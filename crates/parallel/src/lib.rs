//! Deterministic ordered fan-out over OS threads.
//!
//! The sweep, tuner and figure pipelines are embarrassingly parallel: a grid
//! of independent simulation runs whose outputs are combined by *index*, not
//! by completion order. [`par_map`] runs such a grid across a pool of scoped
//! threads and returns results in input order, so callers that derive any
//! per-item randomness from the item index produce byte-identical output at
//! every thread count.
//!
//! Thread count resolution, highest priority first:
//! 1. [`set_threads`] (e.g. from `papctl --threads N`),
//! 2. the `PAP_THREADS` environment variable,
//! 3. all available cores.
//!
//! A value of 1 forces the plain sequential loop (no threads spawned).
//! Nested [`par_map`] calls from inside a worker run sequentially, so outer
//! parallelism (e.g. the tuner's kind × size grid) is not multiplied by
//! inner parallelism (each cell's sweep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Explicit override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `PAP_THREADS` / core-count default.
static DEFAULT: OnceLock<usize> = OnceLock::new();

std::thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Set the global thread count (1 forces sequential execution).
///
/// Takes priority over `PAP_THREADS` and the core count.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// The thread count [`par_map`] will use at top level.
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("PAP_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("warning: ignoring invalid PAP_THREADS={v:?}");
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// True when called from inside a [`par_map`] worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Apply `f(index, &item)` to every item, returning results in input order.
///
/// Runs on [`threads`] scoped threads pulling indices from a shared counter;
/// sequential when the thread count is 1, the input has fewer than 2 items,
/// or the caller is itself a worker. A panic in `f` propagates.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 || in_worker() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let m = pool_metrics();
    m.par_map_calls.inc();
    m.par_map_items.add(n as u64);
    let _span = pap_obs::span("pool", "par_map");

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // join() re-raises worker panics on the caller.
            for (i, v) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("par_map slot unfilled")).collect()
}

/// Run `f(0) … f(n-1)` concurrently, one dedicated scoped thread each, and
/// wait for all of them.
///
/// Unlike [`par_map`], every invocation gets its *own* thread for its whole
/// lifetime — required by lockstep algorithms whose workers rendezvous on a
/// [`std::sync::Barrier`] (a bounded pool would deadlock: a queued worker
/// can never reach a barrier its running peers are waiting on). The threads
/// are marked as workers so nested fan-out stays sequential. A panic in `f`
/// propagates to the caller when the scope joins.
///
/// `pap-sim` drives partitioned single-run execution through this.
pub fn lockstep<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    if n == 1 {
        f(0);
        return;
    }
    let m = pool_metrics();
    m.lockstep_calls.inc();
    let _span = pap_obs::span("pool", "lockstep");
    std::thread::scope(|scope| {
        for i in 0..n {
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                f(i);
            });
        }
    });
}

/// [`par_map`] over an index range instead of a slice.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |_, &i| f(i))
}

/// Run `f` with this thread marked as a pool worker, so any [`par_map`]
/// it performs (directly or transitively) stays sequential. Long-running
/// services use this to keep total parallelism bounded by their own pool
/// instead of multiplying it by the fan-out width.
pub fn sequential<R>(f: impl FnOnce() -> R) -> R {
    let was = IN_WORKER.with(|w| w.replace(true));
    let out = f();
    IN_WORKER.with(|w| w.set(was));
    out
}

/// Cached handles into the global metrics registry. Resolved once; each
/// task then costs a few relaxed atomic ops (submit, queue-wait, busy
/// gauge, completion), taken only on the pool path — `par_map` grids pay a
/// single per-call add.
struct PoolMetrics {
    submitted: pap_obs::Counter,
    completed: pap_obs::Counter,
    dropped: pap_obs::Counter,
    queue_wait_us: pap_obs::Histogram,
    workers_busy: pap_obs::Gauge,
    par_map_calls: pap_obs::Counter,
    par_map_items: pap_obs::Counter,
    lockstep_calls: pap_obs::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = pap_obs::global();
        PoolMetrics {
            submitted: reg.counter("pool.tasks.submitted"),
            completed: reg.counter("pool.tasks.completed"),
            dropped: reg.counter("pool.tasks.dropped"),
            queue_wait_us: reg.histogram(
                "pool.queue_wait_us",
                &[10, 100, 1_000, 10_000, 100_000, 1_000_000],
            ),
            workers_busy: reg.gauge("pool.workers_busy"),
            par_map_calls: reg.counter("pool.par_map.calls"),
            par_map_items: reg.counter("pool.par_map.items"),
            lockstep_calls: reg.counter("pool.lockstep.calls"),
        }
    })
}

/// A queued task plus its enqueue time (for the queue-wait histogram).
type Task = (std::time::Instant, Box<dyn FnOnce() + Send + 'static>);

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a task is pushed or the pool starts shutting down.
    task_ready: Condvar,
    /// Signalled when a queue slot frees up (for bounded [`Pool::submit`]).
    slot_free: Condvar,
    bound: usize,
}

struct PoolQueue {
    tasks: VecDeque<Task>,
    shutdown: bool,
    /// When shutting down: run the queued backlog (`true`, drain) or drop it
    /// (`false`, abort). In-flight tasks always run to completion.
    run_backlog: bool,
}

/// A bounded FIFO pool of long-lived worker threads for dynamically
/// submitted tasks (as opposed to [`par_map`]'s static grids).
///
/// * [`Pool::submit`] blocks while the queue holds `queue_bound` pending
///   tasks — natural backpressure for servers feeding connections into the
///   pool.
/// * Workers run tasks with the [`in_worker`] flag set, so a task calling
///   [`par_map`] runs it sequentially: total parallelism stays bounded by
///   the pool size.
/// * [`Pool::join`] stops intake, runs the queued backlog, and joins the
///   workers (graceful drain). [`Pool::abort`] drops the backlog and joins
///   after in-flight tasks finish.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool of `workers` threads with a queue bound of
    /// `queue_bound` pending tasks (both clamped to at least 1).
    pub fn new(workers: usize, queue_bound: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                shutdown: false,
                run_backlog: true,
            }),
            task_ready: Condvar::new(),
            slot_free: Condvar::new(),
            bound: queue_bound.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    loop {
                        let task = {
                            let mut q = shared.queue.lock().expect("pool queue poisoned");
                            loop {
                                if q.shutdown && (!q.run_backlog || q.tasks.is_empty()) {
                                    return;
                                }
                                if let Some(t) = q.tasks.pop_front() {
                                    shared.slot_free.notify_one();
                                    break t;
                                }
                                q = shared.task_ready.wait(q).expect("pool queue poisoned");
                            }
                        };
                        let (enqueued, task) = task;
                        let m = pool_metrics();
                        m.queue_wait_us
                            .record(enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        m.workers_busy.add(1);
                        let span = pap_obs::span("pool", "task");
                        task();
                        drop(span);
                        m.workers_busy.add(-1);
                        m.completed.inc();
                    }
                })
            })
            .collect();
        Pool { shared, workers }
    }

    /// Enqueue a task, blocking while the queue is full. Returns `false`
    /// (dropping the task) if the pool is shutting down.
    pub fn submit(&self, f: impl FnOnce() + Send + 'static) -> bool {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        while !q.shutdown && q.tasks.len() >= self.shared.bound {
            q = self.shared.slot_free.wait(q).expect("pool queue poisoned");
        }
        if q.shutdown {
            return false;
        }
        q.tasks.push_back((std::time::Instant::now(), Box::new(f)));
        drop(q);
        pool_metrics().submitted.inc();
        self.shared.task_ready.notify_one();
        true
    }

    /// Number of tasks waiting in the queue (not yet started).
    pub fn backlog(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").tasks.len()
    }

    /// Graceful shutdown: stop intake, run every queued task, join workers.
    pub fn join(self) {
        self.finish(true);
    }

    /// Abort: stop intake, drop queued tasks, join workers once their
    /// current task (if any) completes. Returns the number of dropped tasks.
    pub fn abort(self) -> usize {
        self.finish(false)
    }

    fn finish(mut self, run_backlog: bool) -> usize {
        let dropped = {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
            q.run_backlog = run_backlog;
            if run_backlog { 0 } else { std::mem::take(&mut q.tasks).len() }
        };
        pool_metrics().dropped.add(dropped as u64);
        self.shared.task_ready.notify_all();
        self.shared.slot_free.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("pool worker panicked");
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global thread-count override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn lockstep_runs_every_index_and_supports_barriers() {
        let n = 4;
        let barrier = std::sync::Barrier::new(n);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        lockstep(n, |i| {
            // A barrier inside the worker body would deadlock on a bounded
            // pool; dedicated threads must sail through.
            barrier.wait();
            hits[i].fetch_add(1, Ordering::Relaxed);
            assert!(in_worker());
            barrier.wait();
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_at_any_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        for n in [1, 2, 7] {
            set_threads(n);
            assert_eq!(par_map(&items, |_, x| x.wrapping_mul(0x9E37_79B9)), seq);
        }
        set_threads(1);
    }

    #[test]
    fn nested_calls_run_sequentially() {
        let _guard = LOCK.lock().unwrap();
        set_threads(4);
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |_, &i| {
            assert!(in_worker());
            let inner: Vec<usize> = (0..4).collect();
            par_map(&inner, |_, &j| i * 10 + j)
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        set_threads(1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, x| *x).is_empty());
        assert_eq!(par_map(&[42u32], |_, x| *x), vec![42]);
        assert_eq!(par_map_range(3, |i| i * i), vec![0, 1, 4]);
    }

    #[test]
    fn sequential_scope_disables_fanout() {
        assert!(!in_worker());
        let inside = sequential(|| {
            assert!(in_worker());
            // Nested par_map must run inline (order-preserving is trivially
            // true either way; in_worker() proves the sequential path).
            par_map(&[1u32, 2, 3], |_, &x| {
                assert!(in_worker());
                x * 2
            })
        });
        assert_eq!(inside, vec![2, 4, 6]);
        assert!(!in_worker(), "sequential() must restore the flag");
    }

    #[test]
    fn pool_runs_all_tasks_and_drains_on_join() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(3, 4);
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            assert!(pool.submit(move || {
                assert!(in_worker(), "pool tasks run with the worker flag set");
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_abort_drops_backlog_but_finishes_inflight() {
        let started = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = Pool::new(1, 64);
        // First task blocks the lone worker until the gate opens.
        {
            let started = Arc::clone(&started);
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                started.fetch_add(1, Ordering::Relaxed);
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        // Queue a backlog that abort() must drop.
        for _ in 0..10 {
            let started = Arc::clone(&started);
            pool.submit(move || {
                started.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wait for the worker to pick up the blocking task.
        while started.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        // Abort from a helper thread (it blocks joining the gated worker);
        // only open the gate once the shutdown flag is set, so the worker
        // cannot steal backlog tasks in the window before the abort.
        let shared = Arc::clone(&pool.shared);
        let aborter = std::thread::spawn(move || pool.abort());
        while !shared.queue.lock().unwrap().shutdown {
            std::thread::yield_now();
        }
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let dropped = aborter.join().unwrap();
        assert_eq!(started.load(Ordering::Relaxed), 1, "backlog must not run after abort");
        assert_eq!(dropped, 10);
    }

    #[test]
    fn pool_publishes_metrics() {
        let m = pool_metrics();
        let (sub0, comp0, wait0) =
            (m.submitted.get(), m.completed.get(), m.queue_wait_us.count());
        let pool = Pool::new(2, 8);
        for _ in 0..5 {
            assert!(pool.submit(|| {}));
        }
        pool.join();
        assert!(m.submitted.get() >= sub0 + 5);
        assert!(m.completed.get() >= comp0 + 5);
        assert!(m.queue_wait_us.count() >= wait0 + 5);
    }

    #[test]
    fn pool_submit_after_shutdown_is_rejected() {
        let pool = Pool::new(2, 2);
        let shared = Arc::clone(&pool.shared);
        pool.join();
        // A fresh handle to the shared state simulates a racing submitter.
        let mut q = shared.queue.lock().unwrap();
        assert!(q.shutdown);
        assert!(q.tasks.is_empty());
        q.tasks.clear();
    }
}
