//! Least-squares fitting of the piecewise-linear LogGP form, with
//! guideline-based fit rejection.
//!
//! The engine's one-way time of an uncontended message is exactly
//!
//! ```text
//! t(b) = o + k·L + b/bw        o = o_s + o_r,  k = 1 (eager) | 3 (rendezvous)
//! ```
//!
//! per scope (intra/inter), with the overhead `o` shared across scopes (it is
//! CPU-side) and the eager threshold shared too (it is a transport setting).
//! The rendezvous handshake adds exactly `2·L`, so a ladder that straddles
//! the threshold identifies latency *separately* from overhead — and a
//! constant clock-sync residual, which shifts every observation of a node
//! pair equally, lands in `o` without biasing `L` or `bw`.
//!
//! For each candidate threshold (a ladder rung), the five parameters
//! `[o, L_intra, 1/bw_intra, L_inter, 1/bw_inter]` are solved by weighted
//! least squares (weights `1/t` — relative error, so µs-scale rungs count as
//! much as ms-scale ones), and the candidate with the smallest relative SSE
//! wins. Reduce cost and NIC serialization come from their dedicated probe
//! sections; the reduce collective doubles as an end-to-end cross-check of
//! the fitted point-to-point form.
//!
//! A fit is *rejected* — never silently served — when it violates the
//! Hunold-style guidelines in [`fit_probe`]: parameters out of physical
//! range, inter latency below intra, poor residuals, or a failed collective
//! cross-check.

use pap_sim::{LinkParams, NoiseModel, PlatformSpec};
use serde::{Deserialize, Serialize};

use crate::probe::{Probe, Scope, PROBE_FORMAT};

/// A fitted platform plus the evidence behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// The fitted machine parameters, ready for
    /// [`pap_sim::register_custom_platform`].
    pub spec: PlatformSpec,
    /// Fitted combined CPU overhead `o_s + o_r` (seconds); the spec splits
    /// it evenly between the two sides.
    pub overhead: f64,
    /// Median relative residual of the ladder fit.
    pub median_rel_residual: f64,
    /// Worst relative residual of the ladder fit.
    pub max_rel_residual: f64,
    /// Worst relative error of the reduce-collective cross-check (measured
    /// bare-transfer time vs the fitted point-to-point prediction).
    pub collective_rel_err: f64,
    /// Estimated relative noise (robust sigma of repetition scatter).
    pub noise_sigma: f64,
    /// Number of ladder observations used.
    pub observations: usize,
}

/// Why a probe could not be turned into a platform.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The probe itself is unusable (wrong format, missing scopes, too few
    /// rungs or repetitions).
    BadProbe(String),
    /// The solve produced parameters that fail the guideline checks; each
    /// entry names one violated guideline.
    Rejected(Vec<String>),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::BadProbe(m) => write!(f, "bad probe: {m}"),
            FitError::Rejected(v) => write!(f, "fit rejected: {}", v.join("; ")),
        }
    }
}

impl std::error::Error for FitError {}

fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Solve the symmetric positive system `A x = b` (normal equations) by
/// Gaussian elimination with partial pivoting. `None` when singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            // Two rows of `a` are live at once, so indexing stays.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// One median-filtered ladder point.
struct Point {
    scope: Scope,
    bytes: u64,
    t: f64,
    rel_spread: f64,
}

fn condense(probe: &Probe) -> Result<Vec<Point>, FitError> {
    let mut points = Vec::new();
    for obs in &probe.ladder {
        if obs.reps.is_empty() {
            return Err(FitError::BadProbe(format!("{:?} {} B rung has no repetitions", obs.scope, obs.bytes)));
        }
        if obs.reps.iter().any(|t| !t.is_finite() || *t <= 0.0) {
            return Err(FitError::BadProbe(format!("{:?} {} B rung has non-positive times", obs.scope, obs.bytes)));
        }
        let mut reps = obs.reps.clone();
        let med = median(&mut reps);
        let mut dev: Vec<f64> = obs.reps.iter().map(|t| (t - med).abs() / med).collect();
        let mad = median(&mut dev);
        points.push(Point { scope: obs.scope, bytes: obs.bytes, t: med, rel_spread: 1.4826 * mad });
    }
    Ok(points)
}

/// The weighted-least-squares solve for one candidate threshold. Returns
/// `(params [o, L_i, G_i, L_x, G_x], relative SSE)`.
fn solve_for_threshold(points: &[Point], threshold: u64) -> Option<(Vec<f64>, f64)> {
    let mut ata = vec![vec![0.0; 5]; 5];
    let mut atb = vec![0.0; 5];
    for p in points {
        let k = if p.bytes <= threshold { 1.0 } else { 3.0 };
        let row = match p.scope {
            Scope::Intra => [1.0, k, p.bytes as f64, 0.0, 0.0],
            Scope::Inter => [1.0, 0.0, 0.0, k, p.bytes as f64],
        };
        let w = 1.0 / (p.t * p.t); // least squares on (residual / t)
        for i in 0..5 {
            for j in 0..5 {
                ata[i][j] += w * row[i] * row[j];
            }
            atb[i] += w * row[i] * p.t;
        }
    }
    let x = solve(ata, atb)?;
    let mut sse = 0.0;
    for p in points {
        let k = if p.bytes <= threshold { 1.0 } else { 3.0 };
        let pred = match p.scope {
            Scope::Intra => x[0] + k * x[1] + p.bytes as f64 * x[2],
            Scope::Inter => x[0] + k * x[3] + p.bytes as f64 * x[4],
        };
        let r = (pred - p.t) / p.t;
        sse += r * r;
    }
    Some((x, sse))
}

fn rel_residuals(points: &[Point], x: &[f64], threshold: u64) -> Vec<f64> {
    points
        .iter()
        .map(|p| {
            let k = if p.bytes <= threshold { 1.0 } else { 3.0 };
            let pred = match p.scope {
                Scope::Intra => x[0] + k * x[1] + p.bytes as f64 * x[2],
                Scope::Inter => x[0] + k * x[3] + p.bytes as f64 * x[4],
            };
            ((pred - p.t) / p.t).abs()
        })
        .collect()
}

/// Fit a [`PlatformSpec`] from a measured probe.
///
/// Errors with [`FitError::BadProbe`] when the probe is structurally
/// unusable, and [`FitError::Rejected`] (listing every violated guideline)
/// when the solved parameters are not physically credible — a rejected fit
/// must not be registered or served.
pub fn fit_probe(probe: &Probe) -> Result<FitReport, FitError> {
    if probe.format != PROBE_FORMAT {
        return Err(FitError::BadProbe(format!(
            "probe format {} unsupported (expected {PROBE_FORMAT})",
            probe.format
        )));
    }
    if probe.nodes == 0 || probe.cores_per_node == 0 {
        return Err(FitError::BadProbe("probe must state nodes and cores_per_node".into()));
    }
    let points = condense(probe)?;
    let mut sizes: Vec<u64> = points.iter().filter(|p| p.scope == Scope::Intra).map(|p| p.bytes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let inter_sizes: Vec<u64> =
        points.iter().filter(|p| p.scope == Scope::Inter).map(|p| p.bytes).collect();
    if sizes.len() < 4 || inter_sizes.len() < 4 {
        return Err(FitError::BadProbe("ladder needs at least 4 rungs per scope".into()));
    }

    // Candidate thresholds: every rung with at least two rungs on each side,
    // plus the top rung ("no rendezvous observed" — the threshold is then at
    // least the largest probed size).
    let candidates: Vec<u64> = sizes[1..sizes.len() - 2]
        .iter()
        .copied()
        .chain(std::iter::once(*sizes.last().expect("non-empty")))
        .collect();
    let mut best: Option<(u64, Vec<f64>, f64)> = None;
    for &t in &candidates {
        if let Some((x, sse)) = solve_for_threshold(&points, t) {
            if best.as_ref().is_none_or(|(_, _, b)| sse < *b) {
                best = Some((t, x, sse));
            }
        }
    }
    let (threshold, x, _) = best.ok_or_else(|| {
        FitError::BadProbe("ladder is degenerate (singular fit for every threshold)".into())
    })?;

    let overhead = x[0];
    let intra = LinkParams { latency: x[1], bandwidth: if x[2] > 0.0 { 1.0 / x[2] } else { f64::INFINITY } };
    let inter = LinkParams { latency: x[3], bandwidth: if x[4] > 0.0 { 1.0 / x[4] } else { f64::INFINITY } };

    let mut res = rel_residuals(&points, &x, threshold);
    let max_rel_residual = res.iter().copied().fold(0.0, f64::max);
    let median_rel_residual = median(&mut res);
    let mut spreads: Vec<f64> = points.iter().map(|p| p.rel_spread).collect();
    let noise_sigma = median(&mut spreads);

    // Reduce cost: per observed size, the median extra time of the reduced
    // run over the bare transfer, per byte.
    let mut gammas = Vec::new();
    let mut collective_rel_err: f64 = 0.0;
    for obs in &probe.reduce {
        if obs.base.is_empty() || obs.reduced.is_empty() || obs.bytes == 0 {
            return Err(FitError::BadProbe("reduce observation missing repetitions".into()));
        }
        let base = median(&mut obs.base.clone());
        let reduced = median(&mut obs.reduced.clone());
        gammas.push(((reduced - base) / obs.bytes as f64).max(0.0));
        // Cross-check: the bare transfer is an intra p2p message — the
        // fitted form must predict it (the "one small collective" sanity
        // oracle, covering both protocol regimes).
        let k = if obs.bytes <= threshold { 1.0 } else { 3.0 };
        let pred = overhead + k * intra.latency + obs.bytes as f64 / intra.bandwidth;
        collective_rel_err = collective_rel_err.max(((pred - base) / base).abs());
    }
    let reduce_cost_per_byte = if gammas.is_empty() { 0.0 } else { median(&mut gammas) };

    // NIC serialization: `lanes` concurrent transfers through one egress NIC
    // take ~lanes wire times when serialized, ~1 when parallel.
    let nic_serialization = match &probe.fanout {
        Some(f) if !f.single.is_empty() && !f.fanned.is_empty() && f.lanes >= 2 => {
            let single = median(&mut f.single.clone());
            let fanned = median(&mut f.fanned.clone());
            let wire = f.bytes as f64 / inter.bandwidth;
            fanned - single > 0.5 * (f.lanes - 1) as f64 * wire
        }
        // No multi-node fan-out measured: keep the engine's default.
        _ => true,
    };

    let default_noise =
        if noise_sigma < 0.005 { NoiseModel::None } else { NoiseModel::gaussian(noise_sigma) };

    let spec = PlatformSpec {
        nodes: probe.nodes,
        cores_per_node: probe.cores_per_node,
        intra,
        inter,
        eager_threshold: threshold,
        send_overhead: overhead.max(0.0) / 2.0,
        recv_overhead: overhead.max(0.0) / 2.0,
        reduce_cost_per_byte,
        nic_serialization,
        default_noise,
    };

    // Guideline-based rejection (Hunold-style sanity oracle): a fit that is
    // not physically credible is an error, not a platform.
    let mut violations = Vec::new();
    let lat_range = 1e-9..=1e-2;
    let bw_range = 1e6..=1e14;
    if !lat_range.contains(&intra.latency) {
        violations.push(format!("intra latency {:.3e} s outside [1 ns, 10 ms]", intra.latency));
    }
    if !lat_range.contains(&inter.latency) {
        violations.push(format!("inter latency {:.3e} s outside [1 ns, 10 ms]", inter.latency));
    }
    if !bw_range.contains(&intra.bandwidth) {
        violations.push(format!("intra bandwidth {:.3e} B/s outside [1 MB/s, 100 TB/s]", intra.bandwidth));
    }
    if !bw_range.contains(&inter.bandwidth) {
        violations.push(format!("inter bandwidth {:.3e} B/s outside [1 MB/s, 100 TB/s]", inter.bandwidth));
    }
    if inter.latency < intra.latency {
        violations.push(format!(
            "inter latency {:.3e} s below intra latency {:.3e} s (hierarchy guideline)",
            inter.latency, intra.latency
        ));
    }
    if !(-1e-8..=1e-3).contains(&overhead) {
        violations.push(format!("CPU overhead {overhead:.3e} s outside [0, 1 ms]"));
    }
    if median_rel_residual > 0.15 {
        violations.push(format!(
            "median ladder residual {:.1}% above 15% (fit does not explain the probe)",
            median_rel_residual * 100.0
        ));
    }
    if max_rel_residual > 0.60 {
        violations.push(format!("worst ladder residual {:.1}% above 60%", max_rel_residual * 100.0));
    }
    if collective_rel_err > 0.30 {
        violations.push(format!(
            "reduce-collective cross-check off by {:.1}% (above 30%)",
            collective_rel_err * 100.0
        ));
    }
    if !violations.is_empty() {
        return Err(FitError::Rejected(violations));
    }

    Ok(FitReport {
        spec,
        overhead,
        median_rel_residual,
        max_rel_residual,
        collective_rel_err,
        noise_sigma,
        observations: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{synthesize_probe, ProbeConfig};
    use pap_sim::{MachineId, Platform};

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-30)
    }

    #[test]
    fn noise_free_fit_recovers_preset_parameters_exactly() {
        for m in MachineId::REAL {
            let cfg = ProbeConfig { reps: 1, noise: false, clock_sync: false, ..Default::default() };
            let probe = synthesize_probe(m, "t", &cfg).unwrap();
            let fit = fit_probe(&probe).unwrap_or_else(|e| panic!("{m:?}: {e}"));
            let truth = Platform::preset(m, 1);
            assert_eq!(fit.spec.eager_threshold, truth.eager_threshold, "{m:?} threshold");
            assert!(rel(fit.spec.intra.latency, truth.intra.latency) < 1e-3, "{m:?} intra L");
            assert!(rel(fit.spec.inter.latency, truth.inter.latency) < 1e-3, "{m:?} inter L");
            assert!(rel(fit.spec.intra.bandwidth, truth.intra.bandwidth) < 1e-3, "{m:?} intra bw");
            assert!(rel(fit.spec.inter.bandwidth, truth.inter.bandwidth) < 1e-3, "{m:?} inter bw");
            assert!(
                rel(fit.overhead, truth.send_overhead + truth.recv_overhead) < 1e-3,
                "{m:?} overhead"
            );
            assert!(
                rel(fit.spec.reduce_cost_per_byte, truth.reduce_cost_per_byte) < 0.05,
                "{m:?} reduce cost: fitted {} true {}",
                fit.spec.reduce_cost_per_byte,
                truth.reduce_cost_per_byte
            );
            assert!(fit.spec.nic_serialization, "{m:?} NIC serialization");
            assert!(fit.median_rel_residual < 1e-6, "{m:?} residual");
        }
    }

    #[test]
    fn noisy_skew_corrected_fit_stays_close() {
        let cfg = ProbeConfig::default(); // noise + clock sync on
        let probe = synthesize_probe(MachineId::Hydra, "h", &cfg).unwrap();
        let fit = fit_probe(&probe).unwrap();
        let truth = Platform::hydra(1);
        assert_eq!(fit.spec.eager_threshold, truth.eager_threshold);
        assert!(rel(fit.spec.inter.bandwidth, truth.inter.bandwidth) < 0.10);
        assert!(rel(fit.spec.intra.bandwidth, truth.intra.bandwidth) < 0.10);
        assert!(rel(fit.spec.inter.latency, truth.inter.latency) < 0.30);
        assert!(fit.spec.nic_serialization);
        assert!(fit.noise_sigma > 0.0);
    }

    #[test]
    fn uncorrected_skewed_probe_is_rejected() {
        // Timestamps from drifting clocks *without* HCA3 correction: the
        // ±500 µs offsets swamp the µs-scale one-way times. Emulate by
        // shifting every inter observation by a constant large offset with
        // the wrong sign (inter < intra).
        let cfg = ProbeConfig { reps: 3, noise: false, clock_sync: false, ..Default::default() };
        let mut probe = synthesize_probe(MachineId::Hydra, "h", &cfg).unwrap();
        for obs in &mut probe.ladder {
            if obs.scope == Scope::Inter {
                for t in &mut obs.reps {
                    *t += 320e-6; // raw NTP-scale clock offset
                }
            }
        }
        match fit_probe(&probe) {
            Err(FitError::Rejected(v)) => {
                assert!(!v.is_empty());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn garbage_probe_is_rejected_not_served() {
        let cfg = ProbeConfig { reps: 1, noise: false, clock_sync: false, ..Default::default() };
        let mut probe = synthesize_probe(MachineId::Hydra, "h", &cfg).unwrap();
        for obs in &mut probe.ladder {
            for t in &mut obs.reps {
                *t = 1e-3; // flat times: zero bandwidth signal
            }
        }
        assert!(matches!(fit_probe(&probe), Err(FitError::Rejected(_))));
    }

    #[test]
    fn structurally_bad_probes_error_early() {
        let cfg = ProbeConfig { reps: 1, noise: false, clock_sync: false, ..Default::default() };
        let good = synthesize_probe(MachineId::Hydra, "h", &cfg).unwrap();

        let mut p = good.clone();
        p.format = 99;
        assert!(matches!(fit_probe(&p), Err(FitError::BadProbe(_))));

        let mut p = good.clone();
        p.ladder.retain(|o| o.scope == Scope::Intra);
        assert!(matches!(fit_probe(&p), Err(FitError::BadProbe(_))));

        let mut p = good.clone();
        p.ladder[0].reps.clear();
        assert!(matches!(fit_probe(&p), Err(FitError::BadProbe(_))));

        let mut p = good;
        p.ladder[0].reps[0] = -1.0;
        assert!(matches!(fit_probe(&p), Err(FitError::BadProbe(_))));
    }
}
