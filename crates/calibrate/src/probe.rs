//! Probe measurement: a skew-corrected ping-pong message-size ladder plus a
//! small reduce collective and a NIC fan-out experiment.
//!
//! A [`Probe`] is the serialized artifact an operator ships to `papd` (or
//! `papctl calibrate`) to onboard a machine: raw one-way timings in seconds,
//! no fitted parameters. In this reproduction the probe is *synthesized* from
//! the simulator — the closed-loop validation treats a machine preset as a
//! black box, measures it exactly the way a real MPI prober would (drifting
//! node clocks, HCA3-corrected timestamps, platform noise), and hands only
//! the resulting observations to the fitter.
//!
//! Timestamp correction mirrors a real deployment: the sender records its
//! local clock before the send, the receiver after the matching receive;
//! both are mapped back to estimated global time through the HCA3-synced
//! clock of their node (`pap-clocksync`). Without that correction the ±500 µs
//! NTP-scale offsets between nodes would swamp the µs-scale one-way times —
//! `fit_probe` on uncorrected observations fails its guideline checks.

use pap_clocksync::{sync_cluster, ClusterClocks, Hca3Config, SyncedClock};
use pap_sim::{run_ref, Job, MachineId, NoiseModel, Op, Platform, RankProgram, SimConfig};
use serde::{Deserialize, Serialize};

/// Version stamp of the serialized probe payload (and of the `Calibrate`
/// wire frame that carries it).
pub const PROBE_FORMAT: u32 = 1;

/// Default message-size ladder (bytes): log-spaced, dense around the common
/// eager/rendezvous thresholds (16 KiB – 64 KiB) so the protocol jump falls
/// between two adjacent rungs.
pub const LADDER: [u64; 11] =
    [64, 256, 1024, 4096, 8192, 16_384, 32_768, 65_536, 131_072, 262_144, 1_048_576];

/// Sizes of the small reduce collective used to pin the local-reduction cost
/// and cross-check the fitted point-to-point form across both protocol
/// regimes.
pub const REDUCE_SIZES: [u64; 3] = [16_384, 65_536, 1_048_576];

/// Which level of the hierarchy a ladder observation crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Both endpoints on the same node.
    Intra,
    /// Endpoints on different nodes.
    Inter,
}

/// Repeated one-way timings of one ladder rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderObs {
    /// Link level crossed.
    pub scope: Scope,
    /// Message size in bytes.
    pub bytes: u64,
    /// One-way times in seconds, one per repetition (skew-corrected).
    pub reps: Vec<f64>,
}

/// Paired timings of the small reduce collective: the bare transfer and the
/// same transfer followed by a local reduction of the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceObs {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Receive-only completion times (seconds).
    pub base: Vec<f64>,
    /// Receive+reduce completion times (seconds).
    pub reduced: Vec<f64>,
}

/// Concurrent inter-node fan-out timings, separating serialized from
/// parallel NIC egress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanoutObs {
    /// Per-lane message size in bytes.
    pub bytes: u64,
    /// Number of concurrent sender→receiver lanes (distinct destination
    /// nodes, all senders on one source node).
    pub lanes: usize,
    /// Makespan of a single lane (seconds).
    pub single: Vec<f64>,
    /// Makespan of all lanes launched together (seconds).
    pub fanned: Vec<f64>,
}

/// A complete measured probe: everything `fit_probe` needs, nothing fitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Probe {
    /// Payload format version ([`PROBE_FORMAT`]).
    pub format: u32,
    /// Suggested machine name (becomes `custom:<name>` unless overridden).
    pub name: String,
    /// Number of compute nodes of the probed machine (operator-known).
    pub nodes: usize,
    /// Rank slots per node (operator-known).
    pub cores_per_node: usize,
    /// Ping-pong ladder observations, both scopes.
    pub ladder: Vec<LadderObs>,
    /// Small-collective (reduce) observations.
    pub reduce: Vec<ReduceObs>,
    /// NIC fan-out observations, absent when the machine has a single node.
    pub fanout: Option<FanoutObs>,
}

impl Probe {
    /// Parse a probe from JSON, checking the format stamp.
    pub fn from_json(s: &str) -> Result<Probe, String> {
        let p: Probe = serde_json::from_str(s).map_err(|e| format!("bad probe JSON: {e}"))?;
        if p.format != PROBE_FORMAT {
            return Err(format!("probe format {} unsupported (expected {PROBE_FORMAT})", p.format));
        }
        Ok(p)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("probe serializes")
    }
}

/// How to synthesize a probe from a simulated platform.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Repetitions per measurement point.
    pub reps: usize,
    /// Base RNG seed (noise draws and clock generation derive from it).
    pub seed: u64,
    /// Apply the platform's default noise model to every run (the "measured
    /// on a real machine" setting). Off = noise-free observations.
    pub noise: bool,
    /// Route timestamps through drifting per-node clocks corrected by HCA3
    /// sync, instead of reading true simulated time directly.
    pub clock_sync: bool,
    /// HCA3 sync parameters (when `clock_sync`).
    pub hca3: Hca3Config,
    /// Message-size ladder.
    pub sizes: Vec<u64>,
    /// Concurrent lanes of the NIC fan-out experiment.
    pub lanes: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            reps: 7,
            seed: 0xCA11,
            noise: true,
            clock_sync: true,
            hca3: Hca3Config::default(),
            sizes: LADDER.to_vec(),
            lanes: 4,
        }
    }
}

/// Timestamping backend: either true simulated time, or local readings of
/// drifting node clocks mapped back through their HCA3-synced estimates.
struct Timebase {
    clocks: Option<(ClusterClocks, Vec<SyncedClock>)>,
}

impl Timebase {
    fn new(platform: &Platform, cfg: &ProbeConfig) -> Timebase {
        if !cfg.clock_sync {
            return Timebase { clocks: None };
        }
        let nodes = platform.occupied_nodes();
        let truth = ClusterClocks::realistic(nodes, cfg.seed ^ 0xC10C);
        let synced = sync_cluster(&truth, &cfg.hca3, cfg.seed ^ 0x5A5A);
        Timebase { clocks: Some((truth, synced)) }
    }

    /// Duration between an event at `t_start` on `src_node` and one at
    /// `t_end` on `dst_node`, as the prober would compute it from two
    /// corrected timestamps.
    fn duration(&self, src_node: usize, dst_node: usize, t_start: f64, t_end: f64) -> f64 {
        match &self.clocks {
            None => t_end - t_start,
            Some((truth, synced)) => {
                let l_start = truth.nodes[src_node].local_of(t_start);
                let l_end = truth.nodes[dst_node].local_of(t_end);
                synced[dst_node].global_of(l_end) - synced[src_node].global_of(l_start)
            }
        }
    }
}

fn sim_config(platform: &Platform, cfg: &ProbeConfig, salt: u64) -> SimConfig {
    let noise = if cfg.noise { platform.default_noise } else { NoiseModel::None };
    SimConfig {
        seed: cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        noise,
        record_phases: false,
        ..SimConfig::default()
    }
}

/// One message `src → dst`; returns the receiver's completion time (true
/// simulated seconds; the caller converts through the [`Timebase`]).
fn one_way(
    platform: &Platform,
    src: usize,
    dst: usize,
    bytes: u64,
    sim: &SimConfig,
) -> Result<f64, String> {
    let mut programs = vec![RankProgram::new(); platform.ranks];
    programs[src] = RankProgram::from_ops(vec![Op::send(dst, 1, bytes, 0)]);
    programs[dst] = RankProgram::from_ops(vec![Op::recv(src, 1, 0)]);
    let out = run_ref(platform, &Job::new(programs), sim).map_err(|e| format!("probe run: {e}"))?;
    Ok(out.finish[dst])
}

/// The reduce micro-collective: rank `src` sends, rank `dst` receives and —
/// when `reduce` — folds the payload into its accumulator.
fn reduce_run(
    platform: &Platform,
    src: usize,
    dst: usize,
    bytes: u64,
    reduce: bool,
    sim: &SimConfig,
) -> Result<f64, String> {
    let mut programs = vec![RankProgram::new(); platform.ranks];
    programs[src] = RankProgram::from_ops(vec![Op::send(dst, 1, bytes, 0)]);
    let mut ops = vec![Op::recv(src, 1, 0)];
    if reduce {
        ops.push(Op::ReduceLocal { from: 0, into: 1, bytes });
    }
    programs[dst] = RankProgram::from_ops(ops);
    let out = run_ref(platform, &Job::new(programs), sim).map_err(|e| format!("probe run: {e}"))?;
    Ok(out.finish[dst])
}

/// `lanes` concurrent inter-node sends from node 0 to distinct nodes;
/// returns each receiver's completion (true simulated seconds).
fn fanout_run(
    platform: &Platform,
    lanes: usize,
    bytes: u64,
    sim: &SimConfig,
) -> Result<Vec<(usize, f64)>, String> {
    let cpn = platform.cores_per_node;
    let mut programs = vec![RankProgram::new(); platform.ranks];
    let mut receivers = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let src = lane; // node 0
        let dst = (lane + 1) * cpn; // node lane+1
        programs[src] = RankProgram::from_ops(vec![Op::send(dst, 1, bytes, 0)]);
        programs[dst] = RankProgram::from_ops(vec![Op::recv(src, 1, 0)]);
        receivers.push(dst);
    }
    let out = run_ref(platform, &Job::new(programs), sim).map_err(|e| format!("probe run: {e}"))?;
    Ok(receivers.into_iter().map(|r| (r, out.finish[r])).collect())
}

/// Measure a probe against a (black-box) platform via the simulator.
///
/// `machine` must resolve through [`Platform::try_preset`]; `name` is the
/// suggested name recorded in the probe. The probe covers the intra pair
/// `(0, 1)`, the inter pair `(0, cores_per_node)`, the reduce collective on
/// the intra pair, and — given at least `lanes + 1` nodes — the NIC fan-out
/// experiment.
pub fn synthesize_probe(
    machine: MachineId,
    name: &str,
    cfg: &ProbeConfig,
) -> Result<Probe, String> {
    let base = Platform::try_preset(machine, 1)?;
    let cpn = base.cores_per_node;
    if cpn < 2 {
        return Err("probe needs at least 2 cores per node for the intra-node ladder".into());
    }
    let lanes = cfg.lanes.clamp(2, cpn).min(base.nodes.saturating_sub(1));
    let want_fanout = lanes >= 2;
    // Enough ranks for the widest experiment: receivers live on nodes
    // 1..=lanes at rank node*cpn.
    let ranks = if want_fanout { lanes * cpn + 1 } else { cpn + 1 };
    let platform = Platform::try_preset(machine, ranks)?;
    let tb = Timebase::new(&platform, cfg);
    if cfg.reps == 0 || cfg.sizes.len() < 4 {
        return Err("probe needs reps >= 1 and a ladder of at least 4 sizes".into());
    }

    let mut ladder = Vec::new();
    for (scope, src, dst) in [(Scope::Intra, 0usize, 1usize), (Scope::Inter, 0, cpn)] {
        let (sn, dn) = (platform.node_of(src), platform.node_of(dst));
        for (si, &bytes) in cfg.sizes.iter().enumerate() {
            let mut reps = Vec::with_capacity(cfg.reps);
            for rep in 0..cfg.reps {
                let salt = (scope as u64) << 32 | (si as u64) << 16 | rep as u64;
                let sim = sim_config(&platform, cfg, salt);
                let t = one_way(&platform, src, dst, bytes, &sim)?;
                reps.push(tb.duration(sn, dn, 0.0, t));
            }
            ladder.push(LadderObs { scope, bytes, reps });
        }
    }

    let mut reduce = Vec::new();
    for (si, &bytes) in REDUCE_SIZES.iter().enumerate() {
        let (mut b, mut r) = (Vec::new(), Vec::new());
        for rep in 0..cfg.reps {
            let salt = 0xD0CE ^ ((si as u64) << 16 | rep as u64);
            let sim = sim_config(&platform, cfg, salt);
            b.push(reduce_run(&platform, 1, 0, bytes, false, &sim)?);
            r.push(reduce_run(&platform, 1, 0, bytes, true, &sim)?);
        }
        reduce.push(ReduceObs { bytes, base: b, reduced: r });
    }

    let fanout = if want_fanout {
        let bytes = 1 << 20;
        let (mut single, mut fanned) = (Vec::new(), Vec::new());
        for rep in 0..cfg.reps {
            let sim = sim_config(&platform, cfg, 0xFA0 ^ rep as u64);
            // Single lane: node 0 → node 1 alone.
            let one = fanout_run(&platform, 1, bytes, &sim)?;
            single.push(
                one.iter()
                    .map(|&(r, t)| tb.duration(0, platform.node_of(r), 0.0, t))
                    .fold(0.0, f64::max),
            );
            let all = fanout_run(&platform, lanes, bytes, &sim)?;
            fanned.push(
                all.iter()
                    .map(|&(r, t)| tb.duration(0, platform.node_of(r), 0.0, t))
                    .fold(0.0, f64::max),
            );
        }
        Some(FanoutObs { bytes, lanes, single, fanned })
    } else {
        None
    };

    Ok(Probe {
        format: PROBE_FORMAT,
        name: name.to_string(),
        nodes: base.nodes,
        cores_per_node: cpn,
        ladder,
        reduce,
        fanout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_covers_both_scopes_and_round_trips() {
        let cfg = ProbeConfig { reps: 2, noise: false, clock_sync: false, ..Default::default() };
        let p = synthesize_probe(MachineId::Hydra, "h", &cfg).unwrap();
        assert_eq!(p.format, PROBE_FORMAT);
        assert!(p.ladder.iter().any(|o| o.scope == Scope::Intra));
        assert!(p.ladder.iter().any(|o| o.scope == Scope::Inter));
        assert!(!p.reduce.is_empty());
        assert!(p.fanout.is_some());
        let back = Probe::from_json(&p.to_json()).unwrap();
        assert_eq!(back.ladder.len(), p.ladder.len());
        assert_eq!(back.cores_per_node, p.cores_per_node);
    }

    #[test]
    fn noise_free_intra_observation_matches_p2p_arithmetic() {
        let cfg = ProbeConfig { reps: 1, noise: false, clock_sync: false, ..Default::default() };
        let p = synthesize_probe(MachineId::SimCluster, "s", &cfg).unwrap();
        let pf = Platform::simcluster(2);
        let small = p
            .ladder
            .iter()
            .find(|o| o.scope == Scope::Intra && o.bytes == 64)
            .expect("64 B intra rung");
        // Eager one-way: o_s + L + b/bw + o_r.
        let expect = pf.p2p_estimate(0, 1, 64);
        assert!(
            (small.reps[0] - expect).abs() < 1e-9,
            "measured {} vs expected {expect}",
            small.reps[0]
        );
    }

    #[test]
    fn skew_correction_keeps_observations_near_truth() {
        let noisy = ProbeConfig { reps: 2, noise: false, clock_sync: true, ..Default::default() };
        let clean = ProbeConfig { reps: 2, noise: false, clock_sync: false, ..Default::default() };
        let a = synthesize_probe(MachineId::Hydra, "h", &noisy).unwrap();
        let b = synthesize_probe(MachineId::Hydra, "h", &clean).unwrap();
        for (oa, ob) in a.ladder.iter().zip(&b.ladder) {
            assert_eq!(oa.bytes, ob.bytes);
            // HCA3 residual is sub-µs; uncorrected offsets would be ±500 µs.
            assert!(
                (oa.reps[0] - ob.reps[0]).abs() < 5e-7,
                "{:?} {} B: corrected {} vs true {}",
                oa.scope,
                oa.bytes,
                oa.reps[0],
                ob.reps[0]
            );
        }
    }
}
