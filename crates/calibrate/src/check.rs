//! Closed-loop validation: does selection from *fitted* parameters agree
//! with selection from the *true* platform?
//!
//! The true preset is treated as a black box: a probe is synthesized from it
//! (noise and clock skew on), fitted blind, and both platforms are then swept
//! over the Fig. 4 grid — every paper collective × message size × selection
//! policy (robust plus the per-pattern oracle for each arrival shape). A
//! cell agrees when both platforms pick the same algorithm.

use pap_arrival::Shape;
use pap_collectives::registry::experiment_ids;
use pap_collectives::CollectiveKind;
use pap_core::{select, BenchMatrix, SelectionPolicy};
use pap_microbench::{sweep, Backend, BenchConfig, SkewPolicy};
use pap_sim::{MachineId, Platform};
use serde::{Deserialize, Serialize};

/// Ranks of the Fig. 4 comparison grid (two+ nodes on every preset).
pub const CHECK_RANKS: usize = 64;

/// Message sizes of the Fig. 4 comparison grid.
pub const CHECK_SIZES: [u64; 3] = [8, 1024, 32_768];

/// Arrival-time skew of the comparison grid, as a factor of the calibrated
/// mean no-delay runtime (the setting of the differential test tier).
pub const CHECK_SKEW: f64 = 1.5;

/// One compared grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgreementCell {
    /// Collective name.
    pub kind: String,
    /// Message size (bytes).
    pub bytes: u64,
    /// Selection policy label (`robust` or `best_under:<pattern>`).
    pub policy: String,
    /// Algorithm chosen on the true platform.
    pub true_pick: u8,
    /// Algorithm chosen on the fitted platform.
    pub fitted_pick: u8,
}

impl AgreementCell {
    /// Whether the two platforms picked the same algorithm.
    pub fn agrees(&self) -> bool {
        self.true_pick == self.fitted_pick
    }
}

/// Fitted-vs-true value of one scalar parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamRow {
    /// Parameter name.
    pub name: String,
    /// Value on the true preset.
    pub true_value: f64,
    /// Fitted value.
    pub fitted_value: f64,
    /// `|fitted - true| / true`.
    pub rel_err: f64,
}

/// Selection agreement between a true preset and a fitted platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgreementReport {
    /// True machine name.
    pub machine: String,
    /// Fitted machine name (`custom:<name>`).
    pub fitted: String,
    /// Ranks of the grid.
    pub ranks: usize,
    /// Every compared cell.
    pub cells: Vec<AgreementCell>,
    /// Fraction of agreeing cells in `[0, 1]`.
    pub agreement: f64,
    /// Fitted-vs-true parameter table.
    pub params: Vec<ParamRow>,
}

fn param_rows(truth: &Platform, fitted: &Platform) -> Vec<ParamRow> {
    let row = |name: &str, t: f64, f: f64| ParamRow {
        name: name.to_string(),
        true_value: t,
        fitted_value: f,
        rel_err: (f - t).abs() / t.abs().max(1e-30),
    };
    vec![
        row("intra_latency_s", truth.intra.latency, fitted.intra.latency),
        row("intra_bandwidth_Bps", truth.intra.bandwidth, fitted.intra.bandwidth),
        row("inter_latency_s", truth.inter.latency, fitted.inter.latency),
        row("inter_bandwidth_Bps", truth.inter.bandwidth, fitted.inter.bandwidth),
        row("eager_threshold_B", truth.eager_threshold as f64, fitted.eager_threshold as f64),
        row(
            "overhead_s",
            truth.send_overhead + truth.recv_overhead,
            fitted.send_overhead + fitted.recv_overhead,
        ),
        row("reduce_cost_s_per_B", truth.reduce_cost_per_byte, fitted.reduce_cost_per_byte),
        row(
            "nic_serialization",
            truth.nic_serialization as u8 as f64,
            fitted.nic_serialization as u8 as f64,
        ),
    ]
}

/// The policy suite of the comparison: the paper's robust average plus the
/// per-pattern oracle for every arrival shape (`best_under:no_delay` is the
/// status-quo policy).
fn policies() -> Vec<(String, SelectionPolicy)> {
    let mut v = vec![("robust".to_string(), SelectionPolicy::robust())];
    for sh in Shape::SUITE {
        v.push((
            format!("best_under:{}", sh.name()),
            SelectionPolicy::BestUnderPattern(sh.name().to_string()),
        ));
    }
    v
}

fn matrix_for(platform: &Platform, kind: CollectiveKind, bytes: u64) -> Result<BenchMatrix, String> {
    let algs = experiment_ids(kind);
    let cfg = BenchConfig::simulation().with_backend(Backend::Model);
    let sw = sweep(
        platform,
        kind,
        &algs,
        &Shape::SUITE,
        bytes,
        SkewPolicy::FactorOfAvg(CHECK_SKEW),
        &[],
        &cfg,
    )
    .map_err(|e| format!("{kind} @ {bytes} B: {e}"))?;
    Ok(BenchMatrix::from_sweep(&sw))
}

/// Compare selection between two resolvable machines over the Fig. 4 grid.
///
/// Both machines go through the same model-backed sweep; only the platform
/// parameters differ. `fitted` is typically a registered custom machine.
pub fn selection_agreement(
    truth: MachineId,
    fitted: MachineId,
    ranks: usize,
) -> Result<AgreementReport, String> {
    let tp = Platform::try_preset(truth, ranks)?;
    let fp = Platform::try_preset(fitted, ranks)?;
    let policies = policies();
    let mut cells = Vec::new();
    for kind in CollectiveKind::PAPER {
        for &bytes in &CHECK_SIZES {
            let tm = matrix_for(&tp, kind, bytes)?;
            let fm = matrix_for(&fp, kind, bytes)?;
            for (label, policy) in &policies {
                let true_pick = select(&tm, policy)?;
                let fitted_pick = select(&fm, policy)?;
                cells.push(AgreementCell {
                    kind: kind.to_string(),
                    bytes,
                    policy: label.clone(),
                    true_pick,
                    fitted_pick,
                });
            }
        }
    }
    let agreeing = cells.iter().filter(|c| c.agrees()).count();
    let agreement = agreeing as f64 / cells.len() as f64;
    Ok(AgreementReport {
        machine: truth.name().to_string(),
        fitted: fitted.name().to_string(),
        ranks,
        cells,
        agreement,
        params: param_rows(&tp, &fp),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_machines_agree_everywhere() {
        let r = selection_agreement(MachineId::SimCluster, MachineId::SimCluster, 16).unwrap();
        assert_eq!(r.agreement, 1.0);
        assert_eq!(r.cells.len(), CollectiveKind::PAPER.len() * CHECK_SIZES.len() * 10);
        assert!(r.params.iter().all(|p| p.rel_err == 0.0));
    }

    #[test]
    fn unregistered_fitted_machine_reports_error() {
        let ghost = MachineId::custom("check-ghost").unwrap();
        assert!(selection_agreement(MachineId::Hydra, ghost, 16).is_err());
    }
}
