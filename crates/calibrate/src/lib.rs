//! # pap-calibrate — online platform calibration
//!
//! Onboard a machine the selection pipeline has never seen: measure a short
//! probe (ping-pong ladder + one small collective, skew-corrected through
//! `pap-clocksync`), fit the piecewise-linear LogGP parameters `pap-model`
//! and `pap-sim` consume by weighted least squares, reject bad fits with
//! Hunold-style guideline checks, and register the result as a
//! `MachineId::Custom` platform that the daemon serves like any preset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod fit;
pub mod probe;

pub use check::{
    selection_agreement, AgreementCell, AgreementReport, ParamRow, CHECK_RANKS, CHECK_SIZES,
    CHECK_SKEW,
};
pub use fit::{fit_probe, FitError, FitReport};
pub use probe::{
    synthesize_probe, FanoutObs, LadderObs, Probe, ProbeConfig, ReduceObs, Scope, LADDER,
    PROBE_FORMAT, REDUCE_SIZES,
};
