//! Property-based tests of pattern generation invariants.

#![cfg(test)]

use proptest::prelude::*;

use crate::pattern::{parse_pattern_file, render_pattern_file, ArrivalPattern};
use crate::shapes::{generate, Shape};

fn any_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::NoDelay),
        Just(Shape::Ascending),
        Just(Shape::Descending),
        Just(Shape::Random),
        Just(Shape::LastDelayed),
        Just(Shape::FirstDelayed),
        Just(Shape::VShape),
        Just(Shape::InvertedV),
        Just(Shape::HalfStep),
    ]
}

proptest! {
    /// For any shape, process count and skew: delays are finite, bounded by
    /// the skew, and (for p > 1, s > 0, non-NoDelay) span exactly [0, s].
    #[test]
    fn generated_patterns_are_bounded(
        shape in any_shape(),
        p in 1usize..300,
        skew_us in 0.0f64..1e6,
        seed in any::<u64>(),
    ) {
        let s = skew_us * 1e-6;
        let pat = generate(shape, p, s, seed);
        prop_assert_eq!(pat.len(), p);
        for &d in &pat.delays {
            prop_assert!(d.is_finite() && d >= 0.0 && d <= s + 1e-12);
        }
        // V shapes are degenerate (all-equal, hence all-zero) at p = 2.
        let degenerate_v = matches!(shape, Shape::VShape | Shape::InvertedV) && p < 3;
        if shape != Shape::NoDelay && p > 1 && s > 0.0 && !degenerate_v {
            prop_assert!((pat.max_skew() - s).abs() < s * 1e-9 + 1e-18);
            let min = pat.delays.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!(min.abs() < s * 1e-9 + 1e-18, "min {min}");
        }
    }

    /// Rescaling reaches the target skew exactly and preserves delay shape
    /// (ratios).
    #[test]
    fn rescale_preserves_shape(
        shape in any_shape(),
        p in 2usize..100,
        target_us in 0.1f64..1e5,
        seed in any::<u64>(),
    ) {
        let pat = generate(shape, p, 1e-3, seed);
        let target = target_us * 1e-6;
        let r = pat.rescaled(target);
        if pat.max_skew() > 0.0 {
            prop_assert!((r.max_skew() - target).abs() < target * 1e-9);
            // Ordering of ranks by delay is preserved.
            let ord = |v: &[f64]| {
                let mut idx: Vec<usize> = (0..v.len()).collect();
                idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap().then(a.cmp(&b)));
                idx
            };
            prop_assert_eq!(ord(&pat.delays), ord(&r.delays));
        }
    }

    /// The pattern file format round-trips with nanosecond fidelity.
    #[test]
    fn file_round_trip(
        shape in any_shape(),
        p in 1usize..150,
        skew_us in 0.0f64..1e5,
        seed in any::<u64>(),
    ) {
        let pat = generate(shape, p, skew_us * 1e-6, seed);
        let text = render_pattern_file(&pat);
        let back = parse_pattern_file(&pat.name, &text).unwrap();
        prop_assert_eq!(back.len(), p);
        for (a, b) in pat.delays.iter().zip(&back.delays) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Mean delay is always within [0, max_skew].
    #[test]
    fn mean_within_bounds(delays in proptest::collection::vec(0.0f64..1.0, 1..200)) {
        let pat = ArrivalPattern::new("t", delays);
        prop_assert!(pat.mean_delay() >= 0.0);
        prop_assert!(pat.mean_delay() <= pat.max_skew() + 1e-15);
    }
}
