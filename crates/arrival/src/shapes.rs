//! The artificial arrival-pattern shapes of Fig. 3 and their generator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::pattern::ArrivalPattern;

/// The eight artificial shapes of Fig. 3, plus the `NoDelay` baseline used
/// by conventional micro-benchmarks.
///
/// Given `p` processes and a maximum skew `s`, each shape maps rank `i` to a
/// delay in `[0, s]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shape {
    /// All processes arrive simultaneously (the conventional benchmark
    /// setting; not one of the eight artificial patterns).
    NoDelay,
    /// Delay grows linearly with rank: `s · i/(p-1)`.
    Ascending,
    /// Delay shrinks linearly with rank: `s · (p-1-i)/(p-1)`.
    Descending,
    /// Uniformly random delays, normalized to span exactly `[0, s]`.
    Random,
    /// Only the last rank is delayed by `s`.
    LastDelayed,
    /// Only rank 0 is delayed by `s`.
    FirstDelayed,
    /// Extremes late, middle early: `s · |2i-(p-1)|/(p-1)`.
    VShape,
    /// Middle late, extremes early: `s · (1 - |2i-(p-1)|/(p-1))`.
    InvertedV,
    /// First half on time, second half delayed by `s` (a step).
    HalfStep,
}

impl Shape {
    /// The eight artificial shapes of Fig. 3 (excludes [`Shape::NoDelay`]).
    pub const ARTIFICIAL: [Shape; 8] = [
        Shape::Ascending,
        Shape::Descending,
        Shape::Random,
        Shape::LastDelayed,
        Shape::FirstDelayed,
        Shape::VShape,
        Shape::InvertedV,
        Shape::HalfStep,
    ];

    /// `NoDelay` followed by the eight artificial shapes — the full suite a
    /// micro-benchmark sweep iterates over.
    pub const SUITE: [Shape; 9] = [
        Shape::NoDelay,
        Shape::Ascending,
        Shape::Descending,
        Shape::Random,
        Shape::LastDelayed,
        Shape::FirstDelayed,
        Shape::VShape,
        Shape::InvertedV,
        Shape::HalfStep,
    ];

    /// Name used in figures and reports.
    pub fn name(self) -> &'static str {
        match self {
            Shape::NoDelay => "no_delay",
            Shape::Ascending => "ascending",
            Shape::Descending => "descending",
            Shape::Random => "random",
            Shape::LastDelayed => "last_delayed",
            Shape::FirstDelayed => "first_delayed",
            Shape::VShape => "v_shape",
            Shape::InvertedV => "inverted_v",
            Shape::HalfStep => "half_step",
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Shape {
    type Err = String;

    /// Case-insensitive; hyphens are accepted in place of underscores
    /// (`last-delayed` ≡ `last_delayed`). `imbalanced-linear` — the generic
    /// name used in discussions of linearly skewed arrival — is an alias
    /// for [`Shape::Ascending`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon = s.to_ascii_lowercase().replace('-', "_");
        if canon == "imbalanced_linear" {
            return Ok(Shape::Ascending);
        }
        Shape::SUITE
            .iter()
            .copied()
            .find(|sh| sh.name() == canon)
            .ok_or_else(|| format!("unknown arrival-pattern shape '{s}'"))
    }
}

/// Generate a concrete arrival pattern: `p` per-rank delays with maximum
/// process skew `max_skew` (seconds), following `shape`.
///
/// The `seed` only matters for [`Shape::Random`]; all other shapes are
/// deterministic. Delays are clamped to `[0, max_skew]`, and for every shape
/// other than `NoDelay` (with `p > 1` and `max_skew > 0`) at least one rank
/// has delay exactly `max_skew` and at least one has exactly `0` — except
/// the V shapes at `p = 2`, which are degenerate (no distinct apex) and
/// collapse to all-zero.
///
/// # Panics
/// Panics if `p == 0` or `max_skew < 0`.
pub fn generate(shape: Shape, p: usize, max_skew: f64, seed: u64) -> ArrivalPattern {
    assert!(p > 0, "pattern needs at least one process");
    assert!(max_skew >= 0.0, "negative max skew");
    let s = max_skew;
    let delays: Vec<f64> = match shape {
        Shape::NoDelay => vec![0.0; p],
        _ if p == 1 => vec![0.0],
        Shape::Ascending => (0..p).map(|i| s * i as f64 / (p - 1) as f64).collect(),
        Shape::Descending => (0..p).map(|i| s * (p - 1 - i) as f64 / (p - 1) as f64).collect(),
        Shape::Random => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let raw: Vec<f64> = (0..p).map(|_| rng.gen::<f64>()).collect();
            let lo = raw.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if hi > lo {
                raw.iter().map(|&x| s * (x - lo) / (hi - lo)).collect()
            } else {
                vec![0.0; p]
            }
        }
        Shape::LastDelayed => {
            let mut v = vec![0.0; p];
            v[p - 1] = s;
            v
        }
        Shape::FirstDelayed => {
            let mut v = vec![0.0; p];
            v[0] = s;
            v
        }
        // For even p the raw V profiles span [1/(p-1), 1] (no rank sits at
        // the exact apex), so normalize to span exactly [0, s].
        Shape::VShape => span_normalize(
            (0..p).map(|i| ((2 * i) as f64 - (p - 1) as f64).abs()).collect(),
            s,
        ),
        Shape::InvertedV => span_normalize(
            (0..p).map(|i| -((2 * i) as f64 - (p - 1) as f64).abs()).collect(),
            s,
        ),
        Shape::HalfStep => (0..p).map(|i| if i < p / 2 { 0.0 } else { s }).collect(),
    };
    ArrivalPattern::new(shape.name(), delays)
}

/// Affinely map a raw profile onto `[0, s]` (identity shape, exact span).
fn span_normalize(raw: Vec<f64>, s: f64) -> Vec<f64> {
    let lo = raw.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi > lo {
        raw.iter().map(|&x| s * (x - lo) / (hi - lo)).collect()
    } else {
        vec![0.0; raw.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for sh in Shape::SUITE {
            let parsed: Shape = sh.name().parse().unwrap();
            assert_eq!(parsed, sh);
        }
        assert!("bogus".parse::<Shape>().is_err());
    }

    #[test]
    fn hyphenated_and_alias_names_parse() {
        assert_eq!("last-delayed".parse::<Shape>().unwrap(), Shape::LastDelayed);
        assert_eq!("V-Shape".parse::<Shape>().unwrap(), Shape::VShape);
        assert_eq!("imbalanced-linear".parse::<Shape>().unwrap(), Shape::Ascending);
        assert_eq!("imbalanced_linear".parse::<Shape>().unwrap(), Shape::Ascending);
    }

    #[test]
    fn all_artificial_shapes_span_zero_to_s() {
        let p = 33;
        let s = 1e-3;
        for sh in Shape::ARTIFICIAL {
            let pat = generate(sh, p, s, 7);
            let max = pat.max_skew();
            let min = pat.delays.iter().copied().fold(f64::INFINITY, f64::min);
            assert!((max - s).abs() < 1e-12, "{sh}: max {max}");
            assert!(min.abs() < 1e-15, "{sh}: min {min}");
            assert!(pat.delays.iter().all(|&d| (-1e-15..=s + 1e-12).contains(&d)), "{sh} out of range");
        }
    }

    #[test]
    fn no_delay_is_all_zero() {
        let pat = generate(Shape::NoDelay, 16, 5.0, 0);
        assert!(pat.delays.iter().all(|&d| d == 0.0));
        assert_eq!(pat.max_skew(), 0.0);
    }

    #[test]
    fn ascending_is_monotone_descending_reversed() {
        let a = generate(Shape::Ascending, 10, 1.0, 0);
        assert!(a.delays.windows(2).all(|w| w[0] <= w[1]));
        let d = generate(Shape::Descending, 10, 1.0, 0);
        let mut rev = d.delays.clone();
        rev.reverse();
        assert_eq!(a.delays, rev);
    }

    #[test]
    fn last_and_first_delayed_touch_one_rank() {
        let l = generate(Shape::LastDelayed, 8, 2.0, 0);
        assert_eq!(l.delays.iter().filter(|&&d| d > 0.0).count(), 1);
        assert_eq!(l.delays[7], 2.0);
        let f = generate(Shape::FirstDelayed, 8, 2.0, 0);
        assert_eq!(f.delays[0], 2.0);
        assert!(f.delays[1..].iter().all(|&d| d == 0.0));
    }

    #[test]
    fn v_shape_and_inverted_v_are_complements() {
        let p = 11;
        let v = generate(Shape::VShape, p, 1.0, 0);
        let iv = generate(Shape::InvertedV, p, 1.0, 0);
        for i in 0..p {
            assert!((v.delays[i] + iv.delays[i] - 1.0).abs() < 1e-12);
        }
        // V-shape: middle rank earliest.
        assert!(v.delays[p / 2] < v.delays[0]);
    }

    #[test]
    fn half_step_splits_at_midpoint() {
        let pat = generate(Shape::HalfStep, 9, 1.0, 0);
        assert!(pat.delays[..4].iter().all(|&d| d == 0.0));
        assert!(pat.delays[4..].iter().all(|&d| d == 1.0));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = generate(Shape::Random, 64, 1.0, 11);
        let b = generate(Shape::Random, 64, 1.0, 11);
        let c = generate(Shape::Random, 64, 1.0, 12);
        assert_eq!(a.delays, b.delays);
        assert_ne!(a.delays, c.delays);
    }

    #[test]
    fn single_process_degenerates_to_zero() {
        for sh in Shape::SUITE {
            let pat = generate(sh, 1, 1.0, 0);
            assert_eq!(pat.delays, vec![0.0]);
        }
    }

    #[test]
    fn zero_skew_is_all_zero() {
        for sh in Shape::SUITE {
            let pat = generate(sh, 8, 0.0, 0);
            assert!(pat.delays.iter().all(|&d| d == 0.0), "{sh}");
        }
    }
}
