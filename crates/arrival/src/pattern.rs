//! Concrete arrival patterns and the paper's pattern file format.

use serde::{Deserialize, Serialize};

/// A concrete process arrival pattern: one delay (seconds) per rank.
///
/// Delays are relative to the pattern's epoch; the rank(s) with delay `0`
/// arrive first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalPattern {
    /// Human-readable provenance (a shape name, or e.g. `"ft_scenario"`).
    pub name: String,
    /// Per-rank delay in seconds; `delays.len()` is the process count.
    pub delays: Vec<f64>,
}

impl ArrivalPattern {
    /// Construct a pattern, validating that delays are finite and
    /// non-negative.
    ///
    /// # Panics
    /// Panics on empty, negative, or non-finite delays.
    pub fn new(name: impl Into<String>, delays: Vec<f64>) -> Self {
        assert!(!delays.is_empty(), "pattern needs at least one process");
        assert!(
            delays.iter().all(|d| d.is_finite() && *d >= 0.0),
            "delays must be finite and non-negative"
        );
        ArrivalPattern { name: name.into(), delays }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// Whether the pattern is empty (never true for validated patterns).
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// The maximum process skew `s`: the largest delay.
    pub fn max_skew(&self) -> f64 {
        self.delays.iter().copied().fold(0.0, f64::max)
    }

    /// Mean delay across ranks.
    pub fn mean_delay(&self) -> f64 {
        self.delays.iter().sum::<f64>() / self.delays.len() as f64
    }

    /// Delay of one rank.
    ///
    /// This is the paper's `get_arrival_pattern_delay()` (Listing 1).
    pub fn delay_of(&self, rank: usize) -> f64 {
        self.delays[rank]
    }

    /// A copy rescaled so the maximum skew equals `target_skew`.
    /// An all-zero pattern stays all-zero.
    pub fn rescaled(&self, target_skew: f64) -> ArrivalPattern {
        assert!(target_skew >= 0.0);
        let cur = self.max_skew();
        if cur == 0.0 {
            return self.clone();
        }
        let f = target_skew / cur;
        ArrivalPattern {
            name: self.name.clone(),
            delays: self.delays.iter().map(|d| d * f).collect(),
        }
    }

    /// A copy with a new name.
    pub fn named(&self, name: impl Into<String>) -> ArrivalPattern {
        ArrivalPattern { name: name.into(), delays: self.delays.clone() }
    }
}

/// Render a pattern in the paper's file format: one line per process, line
/// `i` holding the skew of process `P_i` in seconds.
pub fn render_pattern_file(pattern: &ArrivalPattern) -> String {
    let mut out = String::with_capacity(pattern.len() * 16);
    for d in &pattern.delays {
        out.push_str(&format!("{d:.9}\n"));
    }
    out
}

/// Parse the paper's pattern file format. Blank lines and `#` comments are
/// ignored.
pub fn parse_pattern_file(name: &str, text: &str) -> Result<ArrivalPattern, String> {
    let mut delays = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let d: f64 = line
            .parse()
            .map_err(|e| format!("line {}: bad delay '{line}': {e}", lineno + 1))?;
        if !d.is_finite() || d < 0.0 {
            return Err(format!("line {}: delay must be finite and >= 0, got {d}", lineno + 1));
        }
        delays.push(d);
    }
    if delays.is_empty() {
        return Err("pattern file contains no delays".into());
    }
    Ok(ArrivalPattern::new(name, delays))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{generate, Shape};

    #[test]
    fn basic_stats() {
        let p = ArrivalPattern::new("t", vec![0.0, 1.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.max_skew(), 3.0);
        assert!((p.mean_delay() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.delay_of(1), 1.0);
    }

    #[test]
    fn rescale_hits_target() {
        let p = ArrivalPattern::new("t", vec![0.0, 0.5, 2.0]);
        let r = p.rescaled(4.0);
        assert!((r.max_skew() - 4.0).abs() < 1e-12);
        assert!((r.delays[1] - 1.0).abs() < 1e-12);
        // All-zero pattern is rescale-invariant.
        let z = ArrivalPattern::new("z", vec![0.0, 0.0]);
        assert_eq!(z.rescaled(10.0).delays, vec![0.0, 0.0]);
    }

    #[test]
    fn file_format_round_trips() {
        let p = generate(Shape::Random, 40, 1.25e-3, 3);
        let text = render_pattern_file(&p);
        let back = parse_pattern_file("random", &text).unwrap();
        assert_eq!(back.len(), 40);
        for (a, b) in p.delays.iter().zip(&back.delays) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn file_parser_handles_comments_and_errors() {
        let ok = parse_pattern_file("x", "# header\n0.5\n\n1.0\n").unwrap();
        assert_eq!(ok.delays, vec![0.5, 1.0]);
        assert!(parse_pattern_file("x", "abc\n").is_err());
        assert!(parse_pattern_file("x", "-1.0\n").is_err());
        assert!(parse_pattern_file("x", "# nothing\n").is_err());
    }

    #[test]
    #[should_panic]
    fn negative_delay_rejected() {
        let _ = ArrivalPattern::new("bad", vec![-0.1]);
    }

    #[test]
    fn named_copy_keeps_delays() {
        let p = ArrivalPattern::new("a", vec![0.0, 1.0]);
        let q = p.named("b");
        assert_eq!(q.name, "b");
        assert_eq!(q.delays, p.delays);
    }
}
