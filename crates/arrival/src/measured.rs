//! Patterns measured from application traces (the paper's "FT-Scenario").
//!
//! §V-A of the paper: for each collective call, set the arrival time of the
//! first process to zero, express all other arrivals relative to it, and
//! average per process across all calls. The result (e.g. Fig. 1) is a
//! replayable pattern that captures the application's persistent imbalance.

use serde::{Deserialize, Serialize};

use crate::pattern::ArrivalPattern;
use crate::shapes::{generate, Shape};

/// A pattern derived from per-call arrival-time observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPattern {
    /// Provenance label (e.g. `"ft_scenario@hydra"`).
    pub name: String,
    /// Average per-rank delay (seconds), relative to the first arriver.
    pub avg_delay: Vec<f64>,
    /// Largest single-call skew observed while tracing (the paper uses this
    /// to size artificial patterns in the Fig. 8 experiments).
    pub max_observed_skew: f64,
    /// Number of collective calls aggregated.
    pub calls: usize,
}

impl MeasuredPattern {
    /// Aggregate per-call arrival times into a measured pattern.
    ///
    /// `arrivals[k][i]` is the (global-clock) arrival time of rank `i` at
    /// call `k`. Each call is re-based to its own first arriver before
    /// averaging.
    ///
    /// # Panics
    /// Panics if `arrivals` is empty or ragged.
    pub fn from_call_arrivals(name: impl Into<String>, arrivals: &[Vec<f64>]) -> Self {
        assert!(!arrivals.is_empty(), "no calls recorded");
        let p = arrivals[0].len();
        assert!(p > 0, "no ranks recorded");
        let mut sum = vec![0.0; p];
        let mut max_skew: f64 = 0.0;
        for (k, call) in arrivals.iter().enumerate() {
            assert_eq!(call.len(), p, "ragged arrivals at call {k}");
            let first = call.iter().copied().fold(f64::INFINITY, f64::min);
            let mut call_max = 0.0f64;
            for (i, &a) in call.iter().enumerate() {
                let d = a - first;
                sum[i] += d;
                call_max = call_max.max(d);
            }
            max_skew = max_skew.max(call_max);
        }
        let n = arrivals.len() as f64;
        MeasuredPattern {
            name: name.into(),
            avg_delay: sum.iter().map(|s| s / n).collect(),
            max_observed_skew: max_skew,
            calls: arrivals.len(),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.avg_delay.len()
    }

    /// Whether no ranks were recorded (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.avg_delay.is_empty()
    }

    /// The measured pattern as a replayable [`ArrivalPattern`], re-based so
    /// the earliest average delay is zero.
    pub fn to_pattern(&self) -> ArrivalPattern {
        let lo = self.avg_delay.iter().copied().fold(f64::INFINITY, f64::min);
        ArrivalPattern::new(
            self.name.clone(),
            self.avg_delay.iter().map(|d| (d - lo).max(0.0)).collect(),
        )
    }

    /// Classify the measured pattern against the artificial shapes by cosine
    /// similarity of the (mean-centered) delay vectors; returns the best
    /// shape and its similarity in `[-1, 1]`.
    ///
    /// Used to answer "which of the Fig. 3 shapes does this application's
    /// pattern resemble?".
    pub fn classify(&self) -> (Shape, f64) {
        classify_delays(&self.avg_delay)
    }
}

/// Classify a per-rank delay (or raw arrival-time) vector against the known
/// pattern shapes: the nearest Fig. 3 shape by cosine similarity of the
/// mean-centered delay vectors, i.e. by the *relative imbalance profile*
/// (absolute offsets and the overall skew magnitude cancel out).
///
/// A vector with no spread at all (every rank equal, including the
/// single-rank case) is [`Shape::NoDelay`] with similarity `1.0`. The online
/// selection service uses this to map a query's observed arrival samples to
/// the benchmarked pattern suite.
///
/// # Panics
/// Panics if `delays` is empty.
pub fn classify_delays(delays: &[f64]) -> (Shape, f64) {
    assert!(!delays.is_empty(), "cannot classify an empty delay vector");
    let mine = center(delays);
    if delays.len() < 2 || mine.iter().all(|&d| d == 0.0) {
        return (Shape::NoDelay, 1.0);
    }
    let p = delays.len();
    let mut best = (Shape::Random, f64::NEG_INFINITY);
    for sh in Shape::ARTIFICIAL {
        let proto = generate(sh, p, 1.0, 0);
        let c = cosine(&mine, &center(&proto.delays));
        if c > best.1 {
            best = (sh, c);
        }
    }
    best
}

fn center(v: &[f64]) -> Vec<f64> {
    let m = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| x - m).collect()
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_rebases_per_call() {
        // Two calls; rank 1 is consistently 2s late, epochs differ.
        let arrivals = vec![vec![10.0, 12.0], vec![100.0, 102.0]];
        let m = MeasuredPattern::from_call_arrivals("t", &arrivals);
        assert_eq!(m.calls, 2);
        assert_eq!(m.avg_delay, vec![0.0, 2.0]);
        assert_eq!(m.max_observed_skew, 2.0);
    }

    #[test]
    fn to_pattern_rebases_minimum() {
        let m = MeasuredPattern {
            name: "t".into(),
            avg_delay: vec![1.0, 3.0, 2.0],
            max_observed_skew: 3.0,
            calls: 1,
        };
        let p = m.to_pattern();
        assert_eq!(p.delays, vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn classify_recovers_generating_shape() {
        for sh in [Shape::Ascending, Shape::Descending, Shape::VShape, Shape::HalfStep] {
            let proto = generate(sh, 64, 1e-3, 0);
            // Build synthetic per-call arrivals following the prototype.
            let calls: Vec<Vec<f64>> = (0..5).map(|_| proto.delays.clone()).collect();
            let m = MeasuredPattern::from_call_arrivals("t", &calls);
            let (got, sim) = m.classify();
            assert_eq!(got, sh, "similarity {sim}");
            assert!(sim > 0.99);
        }
    }

    #[test]
    fn classify_delays_handles_flat_scaled_and_shifted_vectors() {
        // No spread (any magnitude) → NoDelay.
        assert_eq!(classify_delays(&[0.0; 8]), (Shape::NoDelay, 1.0));
        assert_eq!(classify_delays(&[3.5; 16]), (Shape::NoDelay, 1.0));
        assert_eq!(classify_delays(&[7.0]), (Shape::NoDelay, 1.0));
        // Scale and absolute offset are irrelevant: raw arrival timestamps
        // classify the same as re-based delays.
        let proto = generate(Shape::LastDelayed, 12, 1.0, 0);
        let shifted: Vec<f64> = proto.delays.iter().map(|d| 100.0 + 0.25 * d).collect();
        let (sh, sim) = classify_delays(&shifted);
        assert_eq!(sh, Shape::LastDelayed);
        assert!(sim > 0.99, "similarity {sim}");
    }

    #[test]
    fn max_observed_skew_tracks_worst_call() {
        let arrivals = vec![vec![0.0, 1.0], vec![0.0, 5.0], vec![0.0, 2.0]];
        let m = MeasuredPattern::from_call_arrivals("t", &arrivals);
        assert_eq!(m.max_observed_skew, 5.0);
        // Average is (1+5+2)/3.
        assert!((m.avg_delay[1] - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn ragged_input_rejected() {
        let _ = MeasuredPattern::from_call_arrivals("t", &[vec![0.0, 1.0], vec![0.0]]);
    }
}
