//! # pap-arrival — process arrival patterns
//!
//! The paper (§II-A, §III-B) studies how the *process arrival pattern* — the
//! per-rank skew with which MPI processes enter a collective — changes which
//! collective algorithm is fastest. This crate provides:
//!
//! * the **eight artificial shapes** of Fig. 3 ([`Shape`]),
//! * a deterministic **generator** ([`generate`]) parameterized by shape,
//!   process count and *maximum process skew* `s` (the paper's §III-B),
//! * the paper's **file format** (p lines, line *i* = skew of process *i*),
//! * [`MeasuredPattern`]s imported from application traces (the
//!   "FT-Scenario"), with rescaling and shape classification.
//!
//! All delays are in **seconds**; every delay lies in `[0, s]` and, for
//! non-trivial shapes, the maximum equals `s` exactly so that patterns with
//! the same `s` are comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measured;
pub mod pattern;
pub mod shapes;

pub use measured::{classify_delays, MeasuredPattern};
pub use pattern::{parse_pattern_file, render_pattern_file, ArrivalPattern};
pub use shapes::{generate, Shape};

#[cfg(test)]
mod proptests;
