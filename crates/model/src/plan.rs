//! Cached tree topologies and traversal orders.
//!
//! Every tree-structured model walks the same deterministic topology for a
//! given (tree family, rank count): the per-rank [`TreeNode`] views and the
//! depth orders they are replayed in depend only on that pair. Building them
//! used to dominate the cost of a single analytical evaluation — a sweep
//! re-derived the identical tree for every (algorithm × pattern) cell — so
//! they are built once per thread here and shared via `Rc`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pap_collectives::topo::{self, TreeNode};

/// The tree families used by the models. `Chain4`/`Pipeline`/`Binary`/
/// `Binomial`/`Flat` are the shared reduce/bcast substrates (IDs 1–5);
/// `InOrderBinary` is Reduce ID 6's fixed tree over actual ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum TreeId {
    /// Flat star: root talks to everyone directly.
    Flat,
    /// Four parallel chains off the root.
    Chain4,
    /// Single pipeline chain.
    Pipeline,
    /// Balanced binary tree.
    Binary,
    /// Binomial tree.
    Binomial,
    /// In-order binary tree rooted at `p − 1`.
    InOrderBinary,
}

/// A tree topology plus its two replay orders, built once per (id, p).
pub(crate) struct TreePlan {
    /// Per-vrank tree views.
    pub nodes: Vec<TreeNode>,
    /// Ranks deepest-first (children before parents): gather-like phases.
    pub up: Vec<usize>,
    /// Ranks shallowest-first (parents before children): scatter-like phases.
    pub down: Vec<usize>,
}

/// Depth of every node, resolved iteratively (a pipeline tree is a single
/// `p`-deep chain, so the naive walk-to-root per node is quadratic).
fn depths(tree: &[TreeNode]) -> Vec<u32> {
    let mut d = vec![u32::MAX; tree.len()];
    let mut path = Vec::new();
    for v0 in 0..tree.len() {
        let mut v = v0;
        while d[v] == u32::MAX {
            path.push(v);
            match tree[v].parent {
                Some(pv) => v = pv,
                None => {
                    d[v] = 0;
                    break;
                }
            }
        }
        let mut depth = d[v];
        while let Some(u) = path.pop() {
            if u == v {
                continue;
            }
            depth += 1;
            d[u] = depth;
        }
        path.clear();
    }
    d
}

impl TreePlan {
    fn build(id: TreeId, p: usize) -> TreePlan {
        let nodes: Vec<TreeNode> = match id {
            TreeId::Flat => (0..p).map(|v| topo::flat(v, p)).collect(),
            TreeId::Chain4 => (0..p).map(|v| topo::chain(v, p, 4)).collect(),
            TreeId::Pipeline => (0..p).map(|v| topo::pipeline(v, p)).collect(),
            TreeId::Binary => (0..p).map(|v| topo::binary(v, p)).collect(),
            TreeId::Binomial => (0..p).map(|v| topo::binomial(v, p)).collect(),
            TreeId::InOrderBinary => (0..p).map(|r| topo::in_order_binary(r, p)).collect(),
        };
        let d = depths(&nodes);
        let maxd = d.iter().copied().max().unwrap_or(0) as usize;
        // Stable bucket sort by depth: within a depth, original rank order —
        // exactly the order a stable sort_by_key produces, so the replay
        // (and therefore every modeled timestamp) is unchanged.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); maxd + 1];
        for (v, &dv) in d.iter().enumerate() {
            buckets[dv as usize].push(v);
        }
        let down: Vec<usize> = buckets.iter().flatten().copied().collect();
        let up: Vec<usize> = buckets.iter().rev().flatten().copied().collect();
        TreePlan { nodes, up, down }
    }
}

thread_local! {
    static CACHE: RefCell<HashMap<(TreeId, usize), Rc<TreePlan>>> = RefCell::new(HashMap::new());
}

/// Upper bound on cached plans per thread; a long-lived daemon serving many
/// distinct rank counts must not grow without bound.
const CACHE_CAP: usize = 256;

/// The shared plan for (id, p), built on first use per thread.
pub(crate) fn tree_plan(id: TreeId, p: usize) -> Rc<TreePlan> {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some(plan) = c.get(&(id, p)) {
            return Rc::clone(plan);
        }
        if c.len() >= CACHE_CAP {
            c.clear();
        }
        let plan = Rc::new(TreePlan::build(id, p));
        c.insert((id, p), Rc::clone(&plan));
        plan
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_match_stable_sort() {
        for id in [
            TreeId::Flat,
            TreeId::Chain4,
            TreeId::Pipeline,
            TreeId::Binary,
            TreeId::Binomial,
            TreeId::InOrderBinary,
        ] {
            for p in [1usize, 2, 3, 5, 8, 13, 64, 130] {
                let plan = TreePlan::build(id, p);
                let d = depths(&plan.nodes);
                let mut down: Vec<usize> = (0..p).collect();
                down.sort_by_key(|&v| d[v]);
                let mut up: Vec<usize> = (0..p).collect();
                up.sort_by_key(|&v| std::cmp::Reverse(d[v]));
                assert_eq!(plan.down, down, "{id:?} p={p} down order");
                assert_eq!(plan.up, up, "{id:?} p={p} up order");
            }
        }
    }

    #[test]
    fn cache_returns_shared_plan() {
        let a = tree_plan(TreeId::Binomial, 16);
        let b = tree_plan(TreeId::Binomial, 16);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(a.nodes.len(), 16);
    }
}
