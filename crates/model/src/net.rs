//! Point-to-point message timing under the LogGP-style parameters of
//! [`Platform`], mirroring the noise-free semantics of the `pap-sim` engine.
//!
//! The simulator resolves each message through an event queue (inject → wire
//! → deliver) with per-node NIC serialization clocks. The model reproduces
//! the same arithmetic directly: a message is fully described by the sender's
//! clock when the send is issued and the receiver's clock when the matching
//! receive is posted, plus the two NIC clocks of the endpoints' nodes.
//! Because every algorithm model resolves messages in a causally consistent
//! order (receivers after senders within each dependency chain), replaying
//! that arithmetic yields the same timestamps the event queue would produce.

use std::cell::RefCell;
use std::rc::Rc;

use pap_sim::Platform;

thread_local! {
    /// Rank → node table cache. The table is a pure function of
    /// `(ranks, cores_per_node)`, and a sweep builds one [`Net`] per grid
    /// cell against the same platform — caching it per thread replaces the
    /// `p` integer divisions per cell with a key compare.
    static NODE_TABLE: RefCell<(usize, usize, Rc<[u32]>)> =
        RefCell::new((0, 0, Rc::from(&[][..])));
}

/// Timing of one resolved point-to-point message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MsgOut {
    /// When the send request completes: `ts` for eager (the sender is free
    /// as soon as the injection is scheduled), egress-done for rendezvous.
    pub send_done: f64,
    /// When the receive request completes (delivery matched + `o_r`).
    pub recv_done: f64,
}

/// Shared network state: per-node NIC egress/ingress serialization clocks.
pub(crate) struct Net<'p> {
    pf: &'p Platform,
    /// Rank → node, precomputed: `node_of` divides, and the round-based
    /// models resolve O(p log p)–O(p²) messages per prediction, so the
    /// per-message integer divisions would dominate the arithmetic.
    node: Rc<[u32]>,
    egress_free: Vec<f64>,
    ingress_free: Vec<f64>,
}

impl<'p> Net<'p> {
    pub fn new(pf: &'p Platform) -> Self {
        let nodes = pf.occupied_nodes();
        let node = NODE_TABLE.with(|c| {
            let mut c = c.borrow_mut();
            if c.0 != pf.ranks || c.1 != pf.cores_per_node {
                let t: Vec<u32> = (0..pf.ranks).map(|r| pf.node_of(r) as u32).collect();
                *c = (pf.ranks, pf.cores_per_node, Rc::from(t));
            }
            Rc::clone(&c.2)
        });
        Net { pf, node, egress_free: vec![0.0; nodes], ingress_free: vec![0.0; nodes] }
    }

    /// Resolve one message `src → dst`.
    ///
    /// * `pre` — the sender's local clock immediately before the send op
    ///   (the send issues at `ts = pre + o_s`; the caller advances the
    ///   sender's clock by `o_s` itself).
    /// * `tr` — the receiver's clock when the matching receive is posted
    ///   (already including the posting `o_r`).
    ///
    /// Mirrors `engine.rs`: eager messages inject at `ts`; rendezvous
    /// messages wait for the handshake, injecting at
    /// `max(ts + L, tr) + L`. Inter-node messages serialize on the source
    /// egress and destination ingress NIC clocks when the platform enables
    /// NIC serialization.
    #[inline]
    pub fn msg(&mut self, src: usize, dst: usize, bytes: u64, pre: f64, tr: f64) -> MsgOut {
        let pf = self.pf;
        let eager = pf.is_eager(bytes);
        let ts = pre + pf.send_overhead;
        let sn = self.node[src] as usize;
        let dn = self.node[dst] as usize;
        let intra = sn == dn;
        let link = if intra { &pf.intra } else { &pf.inter };
        let lat = link.latency;
        let wire = bytes as f64 / link.bandwidth;
        let inject = if eager { ts } else { (ts + lat).max(tr) + lat };

        let (delivered, egress_done) = if !intra && pf.nic_serialization {
            let start = inject.max(self.egress_free[sn]);
            self.egress_free[sn] = start + wire;
            let arrival = start + lat + wire;
            let delivered = arrival.max(self.ingress_free[dn]);
            self.ingress_free[dn] = delivered + wire;
            (delivered, start + wire)
        } else {
            (inject + lat + wire, inject + wire)
        };

        let recv_done = delivered.max(tr) + pf.recv_overhead;
        let send_done = if eager { ts } else { egress_done };
        MsgOut { send_done, recv_done }
    }
}
