//! Analytical models for round-structured schedules: recursive doubling,
//! rings, Rabenseifner halving/doubling, Bruck, pairwise/linear alltoall,
//! neighbor exchange, and the dissemination barrier.
//!
//! These algorithms proceed in synchronized rounds where each rank posts an
//! isend and an irecv and then waits on both; [`exchange_round`] replays one
//! such round for all participants against the shared [`Net`] state. Round
//! maps (`to`/`from`/byte vectors) are hoisted out of the round loops and
//! refilled in place, and the exchange itself draws its working vectors from
//! a per-thread scratch pool — a ring at rank count `p` replays `p − 1`
//! rounds, and the per-round allocations used to dominate its cost.

use std::cell::RefCell;

use pap_collectives::topo;
use pap_sim::Platform;

use crate::net::{MsgOut, Net};

/// Per-thread working vector for [`exchange_round`]: capacity is retained
/// across rounds and evaluations.
#[derive(Default)]
struct Scratch {
    outs: Vec<MsgOut>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// One exchange round: every rank `active[i]` posts `isend(to[i])` then
/// `irecv(from[i])` and waits on both. `sbytes[i]` is the payload rank
/// `active[i]` sends; `reduce_bytes[i]` is folded in (at γ per byte) after
/// the waitall. The to/from maps must pair up: whoever I send to receives
/// from me this round. `pos` inverts `active` (rank → index): every caller
/// keeps `active` fixed across its rounds, so rebuilding the inverse per
/// round would add O(p) work to each of up to O(p) rounds — identity
/// callers just pass `active` itself.
#[allow(clippy::too_many_arguments)]
fn exchange_round(
    pf: &Platform,
    net: &mut Net,
    active: &[usize],
    pos: &[usize],
    to: &[usize],
    from: &[usize],
    sbytes: &[u64],
    reduce_bytes: &[u64],
    locals: &mut [f64],
) {
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        let post = pf.send_overhead + pf.recv_overhead;
        let gamma = pf.reduce_cost_per_byte;
        s.outs.clear();
        // `locals` is only written after the message loop, so the sender's
        // pre-send clock is `locals[from[i]]` and the receiver posts at
        // `locals[active[i]] + post` — no staging copies needed.
        for (&f, &a) in from.iter().zip(active) {
            let si = pos[f];
            s.outs.push(net.msg(f, a, sbytes[si], locals[f], locals[a] + post));
        }
        for ((&t, &a), (out, &rb)) in
            to.iter().zip(active).zip(s.outs.iter().zip(reduce_bytes))
        {
            let di = pos[t];
            debug_assert_eq!(from[di], a, "round exchange must pair up");
            locals[a] = out.recv_done.max(s.outs[di].send_done) + rb as f64 * gamma;
        }
    });
}

/// Blocking send `src → dst` where `dst`'s matching blocking recv is its
/// next op. Advances both clocks (any local reduction is the caller's).
fn blocking_pair(pf: &Platform, net: &mut Net, src: usize, dst: usize, bytes: u64, locals: &mut [f64]) {
    let tr = locals[dst] + pf.recv_overhead;
    let out = net.msg(src, dst, bytes, locals[src], tr);
    locals[src] = out.send_done;
    locals[dst] = out.recv_done;
}

/// Refill `buf` in place from an indexed map — the hoisted-buffer idiom for
/// per-round to/from/byte vectors.
#[inline]
fn refill<T>(buf: &mut Vec<T>, n: usize, f: impl Fn(usize) -> T) {
    buf.clear();
    buf.extend((0..n).map(f));
}

/// `x mod p` for `x < 2p`. The round maps only ever wrap once, so a
/// compare-subtract keeps the per-element index math division-free — the
/// rings and Bruck/pairwise loops compute O(p²) such indices per
/// prediction, where a hardware modulo would dominate the float work.
#[inline(always)]
fn wrap(x: usize, p: usize) -> usize {
    if x >= p {
        x - p
    } else {
        x
    }
}

/// Allreduce ID 3: recursive doubling with fold-in/fold-out of the excess
/// ranks beyond the largest power of two.
pub(crate) fn allreduce_recdbl(pf: &Platform, net: &mut Net, bytes: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let gamma = pf.reduce_cost_per_byte;
    for me in 0..r {
        blocking_pair(pf, net, me + p2, me, bytes, &mut locals);
        locals[me] += bytes as f64 * gamma;
    }
    let active: Vec<usize> = (0..p2).collect();
    let b = vec![bytes; p2];
    let mut partner = Vec::with_capacity(p2);
    for t in 0..p2.trailing_zeros() {
        let d = 1usize << t;
        refill(&mut partner, p2, |i| i ^ d);
        exchange_round(pf, net, &active, &active, &partner, &partner, &b, &b, &mut locals);
    }
    for me in 0..r {
        // The excess rank posted its result recv right after the fold send.
        blocking_pair(pf, net, me, me + p2, bytes, &mut locals);
    }
    locals
}

/// Allreduce IDs 4–5: ring reduce-scatter (in `phases` sub-chunk passes)
/// followed by a ring allgather over whole chunks.
pub(crate) fn allreduce_ring(
    pf: &Platform,
    net: &mut Net,
    bytes: u64,
    phases: usize,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    if p == 1 {
        return locals;
    }
    let chunk = topo::split_chunks(bytes, p);
    let sub: Vec<Vec<u64>> = chunk.iter().map(|&cb| topo::split_chunks(cb, phases)).collect();
    let active: Vec<usize> = (0..p).collect();
    let right: Vec<usize> = (0..p).map(|i| (i + 1) % p).collect();
    let left: Vec<usize> = (0..p).map(|i| (i + p - 1) % p).collect();
    let mut sb = Vec::with_capacity(p);
    let mut rb = Vec::with_capacity(p);
    // `ph` picks a column across all of `sub`'s rows, so iterating the rows
    // themselves is not an option here.
    #[allow(clippy::needless_range_loop)]
    for ph in 0..phases {
        for t in 0..p - 1 {
            let s_off = wrap(p - t, p);
            let r_off = wrap(p - t - 1, p);
            refill(&mut sb, p, |i| sub[wrap(i + s_off, p)][ph]);
            refill(&mut rb, p, |i| sub[wrap(i + r_off, p)][ph]);
            exchange_round(pf, net, &active, &active, &right, &left, &sb, &rb, &mut locals);
        }
    }
    let zero = vec![0u64; p];
    for t in 0..p - 1 {
        let s_off = wrap(1 + p - t, p);
        refill(&mut sb, p, |i| chunk[wrap(i + s_off, p)]);
        exchange_round(pf, net, &active, &active, &right, &left, &sb, &zero, &mut locals);
    }
    locals
}

/// Chunk-interval bookkeeping shared by the two Rabenseifner variants:
/// prefix sums over `split_chunks(bytes, p2)`.
struct Chunks {
    prefix: Vec<u64>,
}

impl Chunks {
    fn new(bytes: u64, p2: usize) -> Self {
        let chunks = topo::split_chunks(bytes, p2);
        let mut prefix = vec![0u64; p2 + 1];
        for (i, &c) in chunks.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c;
        }
        Chunks { prefix }
    }

    fn range(&self, lo: usize, hi: usize) -> u64 {
        self.prefix[hi] - self.prefix[lo]
    }
}

/// Recursive-halving reduce-scatter over vranks `0..p2` (the shared first
/// half of both Rabenseifner variants). `act` maps virtual to actual ranks,
/// precomputed as a table: the per-step loops look it up per vrank, and a
/// rotation with its modulo behind a dynamic call would dominate them.
/// Returns the per-vrank `[lo, hi)` interval (always `[v, v+1)` after all
/// steps, tracked explicitly for the doubling phase).
fn halving_rounds(
    pf: &Platform,
    net: &mut Net,
    p2: usize,
    ch: &Chunks,
    act: &[usize],
    locals: &mut [f64],
) -> Vec<(usize, usize)> {
    let steps = p2.trailing_zeros() as usize;
    let active: Vec<usize> = act.to_vec();
    let mut pos = vec![usize::MAX; locals.len()];
    for (i, &r) in active.iter().enumerate() {
        pos[r] = i;
    }
    let mut iv = vec![(0usize, p2); p2];
    let mut next = Vec::with_capacity(p2);
    let mut to = Vec::with_capacity(p2);
    let mut sb = Vec::with_capacity(p2);
    let mut rb = Vec::with_capacity(p2);
    for t in 0..steps {
        let d = p2 >> (t + 1);
        to.clear();
        sb.clear();
        rb.clear();
        next.clear();
        for (v, &(lo, hi)) in iv.iter().enumerate() {
            let mid = lo + d;
            let (keep, send) = if v & d == 0 { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
            to.push(act[v ^ d]);
            sb.push(ch.range(send.0, send.1));
            rb.push(ch.range(keep.0, keep.1));
            next.push(keep);
        }
        exchange_round(pf, net, &active, &pos, &to, &to, &sb, &rb, locals);
        std::mem::swap(&mut iv, &mut next);
    }
    iv
}

/// Allreduce ID 6: Rabenseifner — fold, recursive-halving reduce-scatter,
/// recursive-doubling allgather, unfold.
pub(crate) fn allreduce_rabenseifner(pf: &Platform, net: &mut Net, bytes: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let gamma = pf.reduce_cost_per_byte;
    for me in 0..r {
        blocking_pair(pf, net, me + p2, me, bytes, &mut locals);
        locals[me] += bytes as f64 * gamma;
    }
    let ch = Chunks::new(bytes, p2);
    let id: Vec<usize> = (0..p2).collect();
    let mut iv = halving_rounds(pf, net, p2, &ch, &id, &mut locals);
    let steps = p2.trailing_zeros() as usize;
    let active: Vec<usize> = (0..p2).collect();
    let zero = vec![0u64; p2];
    let mut to = Vec::with_capacity(p2);
    let mut sb = Vec::with_capacity(p2);
    for t in 0..steps {
        let d = 1usize << t;
        refill(&mut to, p2, |v| v ^ d);
        sb.clear();
        sb.extend(iv.iter().map(|&(lo, hi)| ch.range(lo, hi)));
        exchange_round(pf, net, &active, &active, &to, &to, &sb, &zero, &mut locals);
        for ivv in iv.iter_mut() {
            let lo = ivv.0 & !(2 * d - 1);
            *ivv = (lo, lo + 2 * d);
        }
    }
    for me in 0..r {
        blocking_pair(pf, net, me, me + p2, bytes, &mut locals);
    }
    locals
}

/// Reduce ID 7: Rabenseifner — fold over vranks, recursive-halving
/// reduce-scatter, then a binomial gather of the reduced chunks to vrank 0
/// (the actual `spec.root`).
pub(crate) fn reduce_rabenseifner(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    bytes: u64,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let p2 = topo::pow2_floor(p);
    let gamma = pf.reduce_cost_per_byte;
    let act: Vec<usize> = (0..p2).map(|v| topo::actual(v, root, p)).collect();
    for v in p2..p {
        let folded = topo::actual(v, root, p);
        blocking_pair(pf, net, folded, act[v - p2], bytes, &mut locals);
        locals[act[v - p2]] += bytes as f64 * gamma;
    }
    let ch = Chunks::new(bytes, p2);
    let iv = halving_rounds(pf, net, p2, &ch, &act, &mut locals);
    let steps = p2.trailing_zeros() as usize;
    // Binomial gather: in step t, vranks with bit t set blocking-send their
    // interval to v − 2^t and are done; receivers double their interval.
    let mut hi_of: Vec<usize> = iv.iter().map(|&(_, hi)| hi).collect();
    let mut done = vec![false; p2];
    for t in 0..steps {
        let d = 1usize << t;
        for v in 0..p2 {
            if done[v] || v & d == 0 {
                continue;
            }
            let src = act[v];
            let dst = act[v - d];
            blocking_pair(pf, net, src, dst, ch.range(v, hi_of[v]), &mut locals);
            done[v] = true;
            hi_of[v - d] = v - d + 2 * d;
        }
    }
    locals
}

/// Alltoall IDs 1 and 4: linear with a request window. Per batch, each rank
/// posts irecv/isend pairs for every distance in the batch, then waits on
/// the whole window.
pub(crate) fn alltoall_linear(pf: &Platform, net: &mut Net, m: u64, window: usize, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    if p == 1 {
        return locals;
    }
    let dists: Vec<usize> = (1..p).collect();
    let wmax = window.max(1).min(p);
    let mut tr = Vec::new();
    let mut pre = Vec::new();
    let mut outs = Vec::new();
    for batch in dists.chunks(wmax) {
        let nb = batch.len();
        // Walk every rank's posting sequence: irecv then isend per distance.
        // tr/pre/outs are flat (rank-major, `nb` entries per rank).
        tr.clear();
        tr.resize(p * nb, 0.0);
        pre.clear();
        pre.resize(p * nb, 0.0);
        for (me, l) in locals.iter_mut().enumerate() {
            let mut t = *l;
            for j in 0..nb {
                t += pf.recv_overhead;
                tr[me * nb + j] = t;
                pre[me * nb + j] = t;
                t += pf.send_overhead;
            }
            *l = t;
        }
        // Resolve the batch: the message me → me+k is resolved at the
        // receiver, so rank me's send completion for distance k lives in
        // outs[(me+k) % p * nb + j].
        outs.clear();
        for me in 0..p {
            for (j, &k) in batch.iter().enumerate() {
                let src = wrap(me + p - k, p);
                outs.push(net.msg(src, me, m, pre[src * nb + j], tr[me * nb + j]));
            }
        }
        for (me, l) in locals.iter_mut().enumerate() {
            let mut t = *l;
            for (j, &k) in batch.iter().enumerate() {
                t = t.max(outs[me * nb + j].recv_done).max(outs[wrap(me + k, p) * nb + j].send_done);
            }
            *l = t;
        }
    }
    locals
}

/// Alltoall ID 2: pairwise exchange — round `t` swaps blocks with the ranks
/// at ring distance `t`.
pub(crate) fn alltoall_pairwise(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let b = vec![m; p];
    let zero = vec![0u64; p];
    let mut to = Vec::with_capacity(p);
    let mut from = Vec::with_capacity(p);
    for t in 1..p {
        refill(&mut to, p, |i| wrap(i + t, p));
        refill(&mut from, p, |i| wrap(i + p - t, p));
        exchange_round(pf, net, &active, &active, &to, &from, &b, &zero, &mut locals);
    }
    locals
}

/// Alltoall ID 3: Bruck — log₂ rounds aggregating the blocks whose ring
/// distance has bit `k` set.
pub(crate) fn alltoall_bruck(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    let mut to = Vec::with_capacity(p);
    let mut from = Vec::with_capacity(p);
    let mut b = Vec::with_capacity(p);
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        let bytes = topo::count_bit_set(p, k) as u64 * m;
        refill(&mut to, p, |i| wrap(i + d, p));
        refill(&mut from, p, |i| wrap(i + p - d, p));
        refill(&mut b, p, |_| bytes);
        exchange_round(pf, net, &active, &active, &to, &from, &b, &zero, &mut locals);
        k += 1;
    }
    locals
}

/// Barrier: dissemination — round `k` signals the rank `2^k` ahead.
pub(crate) fn barrier_dissemination(pf: &Platform, net: &mut Net, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let b = vec![1u64; p];
    let zero = vec![0u64; p];
    let mut to = Vec::with_capacity(p);
    let mut from = Vec::with_capacity(p);
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        refill(&mut to, p, |i| wrap(i + d, p));
        refill(&mut from, p, |i| wrap(i + p - d, p));
        exchange_round(pf, net, &active, &active, &to, &from, &b, &zero, &mut locals);
        k += 1;
    }
    locals
}

/// Allgather ID 2 (and ID 3's non-power-of-two fallback): Bruck.
pub(crate) fn allgather_bruck(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    let mut to = Vec::with_capacity(p);
    let mut from = Vec::with_capacity(p);
    let mut b = Vec::with_capacity(p);
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        let bytes = d.min(p - d) as u64 * m;
        refill(&mut to, p, |i| wrap(i + p - d, p));
        refill(&mut from, p, |i| wrap(i + d, p));
        refill(&mut b, p, |_| bytes);
        exchange_round(pf, net, &active, &active, &to, &from, &b, &zero, &mut locals);
        k += 1;
    }
    locals
}

/// Allgather ID 3: recursive doubling (power-of-two `p`).
pub(crate) fn allgather_recdbl(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    let mut to = Vec::with_capacity(p);
    let mut b = Vec::with_capacity(p);
    for k in 0..p.trailing_zeros() {
        let d = 1usize << k;
        refill(&mut to, p, |i| i ^ d);
        refill(&mut b, p, |_| d as u64 * m);
        exchange_round(pf, net, &active, &active, &to, &to, &b, &zero, &mut locals);
    }
    locals
}

/// Allgather ID 4 (and ID 5's odd-`p` fallback): ring.
pub(crate) fn allgather_ring(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    if p == 1 {
        return locals;
    }
    let active: Vec<usize> = (0..p).collect();
    let right: Vec<usize> = (0..p).map(|i| (i + 1) % p).collect();
    let left: Vec<usize> = (0..p).map(|i| (i + p - 1) % p).collect();
    let b = vec![m; p];
    let zero = vec![0u64; p];
    for _ in 0..p - 1 {
        exchange_round(pf, net, &active, &active, &right, &left, &b, &zero, &mut locals);
    }
    locals
}

/// Allgather ID 5: neighbor exchange (even `p`): pairs swap own blocks,
/// then alternate swapping the two most recently received blocks left/right.
pub(crate) fn allgather_neighbor(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    let mut to = Vec::with_capacity(p);
    let mut b = Vec::with_capacity(p);
    for s in 0..p / 2 {
        refill(&mut to, p, |r| {
            if s == 0 {
                r ^ 1
            } else if (r % 2 == 0) == (s % 2 == 1) {
                (r + p - 1) % p
            } else {
                (r + 1) % p
            }
        });
        let len = if s == 0 { 1u64 } else { 2 };
        refill(&mut b, p, |_| len * m);
        exchange_round(pf, net, &active, &active, &to, &to, &b, &zero, &mut locals);
    }
    locals
}
