//! Analytical models for round-structured schedules: recursive doubling,
//! rings, Rabenseifner halving/doubling, Bruck, pairwise/linear alltoall,
//! neighbor exchange, and the dissemination barrier.
//!
//! These algorithms proceed in synchronized rounds where each rank posts an
//! isend and an irecv and then waits on both; [`exchange_round`] replays one
//! such round for all participants against the shared [`Net`] state.

use pap_collectives::topo;
use pap_sim::Platform;

use crate::net::Net;

/// One exchange round: every rank `active[i]` posts `isend(to[i])` then
/// `irecv(from[i])` and waits on both. `sbytes[i]` is the payload rank
/// `active[i]` sends; `reduce_bytes[i]` is folded in (at γ per byte) after
/// the waitall. The to/from maps must pair up: whoever I send to receives
/// from me this round.
#[allow(clippy::too_many_arguments)]
fn exchange_round(
    pf: &Platform,
    net: &mut Net,
    active: &[usize],
    to: &[usize],
    from: &[usize],
    sbytes: &[u64],
    reduce_bytes: &[u64],
    locals: &mut [f64],
) {
    let n = active.len();
    let mut pos = vec![usize::MAX; locals.len()];
    for (i, &r) in active.iter().enumerate() {
        pos[r] = i;
    }
    let pre: Vec<f64> = active.iter().map(|&r| locals[r]).collect();
    let tr: Vec<f64> = pre.iter().map(|&t| t + pf.send_overhead + pf.recv_overhead).collect();
    let mut outs = Vec::with_capacity(n);
    for i in 0..n {
        let si = pos[from[i]];
        outs.push(net.msg(from[i], active[i], sbytes[si], pre[si], tr[i]));
    }
    for i in 0..n {
        let di = pos[to[i]];
        debug_assert_eq!(from[di], active[i], "round exchange must pair up");
        locals[active[i]] = outs[i].recv_done.max(outs[di].send_done)
            + reduce_bytes[i] as f64 * pf.reduce_cost_per_byte;
    }
}

/// Blocking send `src → dst` where `dst`'s matching blocking recv is its
/// next op. Advances both clocks (any local reduction is the caller's).
fn blocking_pair(pf: &Platform, net: &mut Net, src: usize, dst: usize, bytes: u64, locals: &mut [f64]) {
    let tr = locals[dst] + pf.recv_overhead;
    let out = net.msg(src, dst, bytes, locals[src], tr);
    locals[src] = out.send_done;
    locals[dst] = out.recv_done;
}

/// Allreduce ID 3: recursive doubling with fold-in/fold-out of the excess
/// ranks beyond the largest power of two.
pub(crate) fn allreduce_recdbl(pf: &Platform, net: &mut Net, bytes: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let gamma = pf.reduce_cost_per_byte;
    for me in 0..r {
        blocking_pair(pf, net, me + p2, me, bytes, &mut locals);
        locals[me] += bytes as f64 * gamma;
    }
    let active: Vec<usize> = (0..p2).collect();
    let b = vec![bytes; p2];
    for t in 0..p2.trailing_zeros() {
        let d = 1usize << t;
        let partner: Vec<usize> = active.iter().map(|&i| i ^ d).collect();
        exchange_round(pf, net, &active, &partner, &partner, &b, &b, &mut locals);
    }
    for me in 0..r {
        // The excess rank posted its result recv right after the fold send.
        blocking_pair(pf, net, me, me + p2, bytes, &mut locals);
    }
    locals
}

/// Allreduce IDs 4–5: ring reduce-scatter (in `phases` sub-chunk passes)
/// followed by a ring allgather over whole chunks.
pub(crate) fn allreduce_ring(
    pf: &Platform,
    net: &mut Net,
    bytes: u64,
    phases: usize,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    if p == 1 {
        return locals;
    }
    let chunk = topo::split_chunks(bytes, p);
    let sub: Vec<Vec<u64>> = chunk.iter().map(|&cb| topo::split_chunks(cb, phases)).collect();
    let active: Vec<usize> = (0..p).collect();
    let right: Vec<usize> = (0..p).map(|i| (i + 1) % p).collect();
    let left: Vec<usize> = (0..p).map(|i| (i + p - 1) % p).collect();
    // `ph` picks a column across all of `sub`'s rows, so iterating the rows
    // themselves is not an option here.
    #[allow(clippy::needless_range_loop)]
    for ph in 0..phases {
        for t in 0..p - 1 {
            let sb: Vec<u64> = (0..p).map(|i| sub[(i + p - t) % p][ph]).collect();
            let rb: Vec<u64> = (0..p).map(|i| sub[(i + p - t - 1) % p][ph]).collect();
            exchange_round(pf, net, &active, &right, &left, &sb, &rb, &mut locals);
        }
    }
    let zero = vec![0u64; p];
    for t in 0..p - 1 {
        let sb: Vec<u64> = (0..p).map(|i| chunk[(i + 1 + p - t) % p]).collect();
        exchange_round(pf, net, &active, &right, &left, &sb, &zero, &mut locals);
    }
    locals
}

/// Chunk-interval bookkeeping shared by the two Rabenseifner variants:
/// prefix sums over `split_chunks(bytes, p2)`.
struct Chunks {
    prefix: Vec<u64>,
}

impl Chunks {
    fn new(bytes: u64, p2: usize) -> Self {
        let chunks = topo::split_chunks(bytes, p2);
        let mut prefix = vec![0u64; p2 + 1];
        for (i, &c) in chunks.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c;
        }
        Chunks { prefix }
    }

    fn range(&self, lo: usize, hi: usize) -> u64 {
        self.prefix[hi] - self.prefix[lo]
    }
}

/// Recursive-halving reduce-scatter over vranks `0..p2` (the shared first
/// half of both Rabenseifner variants). `act` maps virtual to actual ranks.
/// Returns the per-vrank `[lo, hi)` interval (always `[v, v+1)` after all
/// steps, tracked explicitly for the doubling phase).
fn halving_rounds(
    pf: &Platform,
    net: &mut Net,
    p2: usize,
    ch: &Chunks,
    act: &dyn Fn(usize) -> usize,
    locals: &mut [f64],
) -> Vec<(usize, usize)> {
    let steps = p2.trailing_zeros() as usize;
    let active: Vec<usize> = (0..p2).map(act).collect();
    let mut iv = vec![(0usize, p2); p2];
    for t in 0..steps {
        let d = p2 >> (t + 1);
        let mut to = Vec::with_capacity(p2);
        let mut sb = Vec::with_capacity(p2);
        let mut rb = Vec::with_capacity(p2);
        let mut next = Vec::with_capacity(p2);
        for (v, &(lo, hi)) in iv.iter().enumerate() {
            let mid = lo + d;
            let (keep, send) = if v & d == 0 { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
            to.push(act(v ^ d));
            sb.push(ch.range(send.0, send.1));
            rb.push(ch.range(keep.0, keep.1));
            next.push(keep);
        }
        exchange_round(pf, net, &active, &to, &to, &sb, &rb, locals);
        iv = next;
    }
    iv
}

/// Allreduce ID 6: Rabenseifner — fold, recursive-halving reduce-scatter,
/// recursive-doubling allgather, unfold.
pub(crate) fn allreduce_rabenseifner(pf: &Platform, net: &mut Net, bytes: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let gamma = pf.reduce_cost_per_byte;
    for me in 0..r {
        blocking_pair(pf, net, me + p2, me, bytes, &mut locals);
        locals[me] += bytes as f64 * gamma;
    }
    let ch = Chunks::new(bytes, p2);
    let id = |v: usize| v;
    let mut iv = halving_rounds(pf, net, p2, &ch, &id, &mut locals);
    let steps = p2.trailing_zeros() as usize;
    let active: Vec<usize> = (0..p2).collect();
    let zero = vec![0u64; p2];
    for t in 0..steps {
        let d = 1usize << t;
        let to: Vec<usize> = (0..p2).map(|v| v ^ d).collect();
        let sb: Vec<u64> = iv.iter().map(|&(lo, hi)| ch.range(lo, hi)).collect();
        exchange_round(pf, net, &active, &to, &to, &sb, &zero, &mut locals);
        for ivv in iv.iter_mut() {
            let lo = ivv.0 & !(2 * d - 1);
            *ivv = (lo, lo + 2 * d);
        }
    }
    for me in 0..r {
        blocking_pair(pf, net, me, me + p2, bytes, &mut locals);
    }
    locals
}

/// Reduce ID 7: Rabenseifner — fold over vranks, recursive-halving
/// reduce-scatter, then a binomial gather of the reduced chunks to vrank 0
/// (the actual `spec.root`).
pub(crate) fn reduce_rabenseifner(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    bytes: u64,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let p2 = topo::pow2_floor(p);
    let gamma = pf.reduce_cost_per_byte;
    let act = |v: usize| topo::actual(v, root, p);
    for v in p2..p {
        blocking_pair(pf, net, act(v), act(v - p2), bytes, &mut locals);
        locals[act(v - p2)] += bytes as f64 * gamma;
    }
    let ch = Chunks::new(bytes, p2);
    let iv = halving_rounds(pf, net, p2, &ch, &act, &mut locals);
    let steps = p2.trailing_zeros() as usize;
    // Binomial gather: in step t, vranks with bit t set blocking-send their
    // interval to v − 2^t and are done; receivers double their interval.
    let mut hi_of: Vec<usize> = iv.iter().map(|&(_, hi)| hi).collect();
    let mut done = vec![false; p2];
    for t in 0..steps {
        let d = 1usize << t;
        for v in 0..p2 {
            if done[v] || v & d == 0 {
                continue;
            }
            let src = act(v);
            let dst = act(v - d);
            blocking_pair(pf, net, src, dst, ch.range(v, hi_of[v]), &mut locals);
            done[v] = true;
            hi_of[v - d] = v - d + 2 * d;
        }
    }
    locals
}

/// Alltoall IDs 1 and 4: linear with a request window. Per batch, each rank
/// posts irecv/isend pairs for every distance in the batch, then waits on
/// the whole window.
pub(crate) fn alltoall_linear(pf: &Platform, net: &mut Net, m: u64, window: usize, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    if p == 1 {
        return locals;
    }
    let dists: Vec<usize> = (1..p).collect();
    for batch in dists.chunks(window.max(1).min(p)) {
        let nb = batch.len();
        // Walk every rank's posting sequence: irecv then isend per distance.
        let mut tr = vec![vec![0.0; nb]; p];
        let mut pre = vec![vec![0.0; nb]; p];
        for (me, l) in locals.iter_mut().enumerate() {
            let mut t = *l;
            for (j, _) in batch.iter().enumerate() {
                t += pf.recv_overhead;
                tr[me][j] = t;
                pre[me][j] = t;
                t += pf.send_overhead;
            }
            *l = t;
        }
        // Resolve the batch: the message me → me+k is resolved at the
        // receiver, so rank me's send completion for distance k lives in
        // outs[(me+k) % p][j].
        let mut outs = vec![Vec::with_capacity(nb); p];
        for me in 0..p {
            for (j, &k) in batch.iter().enumerate() {
                let src = (me + p - k) % p;
                outs[me].push(net.msg(src, me, m, pre[src][j], tr[me][j]));
            }
        }
        for (me, l) in locals.iter_mut().enumerate() {
            let mut t = *l;
            for (j, &k) in batch.iter().enumerate() {
                t = t.max(outs[me][j].recv_done).max(outs[(me + k) % p][j].send_done);
            }
            *l = t;
        }
    }
    locals
}

/// Alltoall ID 2: pairwise exchange — round `t` swaps blocks with the ranks
/// at ring distance `t`.
pub(crate) fn alltoall_pairwise(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let b = vec![m; p];
    let zero = vec![0u64; p];
    for t in 1..p {
        let to: Vec<usize> = (0..p).map(|i| (i + t) % p).collect();
        let from: Vec<usize> = (0..p).map(|i| (i + p - t) % p).collect();
        exchange_round(pf, net, &active, &to, &from, &b, &zero, &mut locals);
    }
    locals
}

/// Alltoall ID 3: Bruck — log₂ rounds aggregating the blocks whose ring
/// distance has bit `k` set.
pub(crate) fn alltoall_bruck(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        let bytes = topo::count_bit_set(p, k) as u64 * m;
        let to: Vec<usize> = (0..p).map(|i| (i + d) % p).collect();
        let from: Vec<usize> = (0..p).map(|i| (i + p - d) % p).collect();
        let b = vec![bytes; p];
        exchange_round(pf, net, &active, &to, &from, &b, &zero, &mut locals);
        k += 1;
    }
    locals
}

/// Barrier: dissemination — round `k` signals the rank `2^k` ahead.
pub(crate) fn barrier_dissemination(pf: &Platform, net: &mut Net, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let b = vec![1u64; p];
    let zero = vec![0u64; p];
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        let to: Vec<usize> = (0..p).map(|i| (i + d) % p).collect();
        let from: Vec<usize> = (0..p).map(|i| (i + p - d) % p).collect();
        exchange_round(pf, net, &active, &to, &from, &b, &zero, &mut locals);
        k += 1;
    }
    locals
}

/// Allgather ID 2 (and ID 3's non-power-of-two fallback): Bruck.
pub(crate) fn allgather_bruck(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        let bytes = d.min(p - d) as u64 * m;
        let to: Vec<usize> = (0..p).map(|i| (i + p - d) % p).collect();
        let from: Vec<usize> = (0..p).map(|i| (i + d) % p).collect();
        let b = vec![bytes; p];
        exchange_round(pf, net, &active, &to, &from, &b, &zero, &mut locals);
        k += 1;
    }
    locals
}

/// Allgather ID 3: recursive doubling (power-of-two `p`).
pub(crate) fn allgather_recdbl(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    for k in 0..p.trailing_zeros() {
        let d = 1usize << k;
        let to: Vec<usize> = (0..p).map(|i| i ^ d).collect();
        let b = vec![d as u64 * m; p];
        exchange_round(pf, net, &active, &to, &to, &b, &zero, &mut locals);
    }
    locals
}

/// Allgather ID 4 (and ID 5's odd-`p` fallback): ring.
pub(crate) fn allgather_ring(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    if p == 1 {
        return locals;
    }
    let active: Vec<usize> = (0..p).collect();
    let right: Vec<usize> = (0..p).map(|i| (i + 1) % p).collect();
    let left: Vec<usize> = (0..p).map(|i| (i + p - 1) % p).collect();
    let b = vec![m; p];
    let zero = vec![0u64; p];
    for _ in 0..p - 1 {
        exchange_round(pf, net, &active, &right, &left, &b, &zero, &mut locals);
    }
    locals
}

/// Allgather ID 5: neighbor exchange (even `p`): pairs swap own blocks,
/// then alternate swapping the two most recently received blocks left/right.
pub(crate) fn allgather_neighbor(pf: &Platform, net: &mut Net, m: u64, starts: &[f64]) -> Vec<f64> {
    let p = starts.len();
    let mut locals = starts.to_vec();
    let active: Vec<usize> = (0..p).collect();
    let zero = vec![0u64; p];
    for s in 0..p / 2 {
        let to: Vec<usize> = (0..p)
            .map(|r| {
                if s == 0 {
                    r ^ 1
                } else if (r % 2 == 0) == (s % 2 == 1) {
                    (r + p - 1) % p
                } else {
                    (r + 1) % p
                }
            })
            .collect();
        let len = if s == 0 { 1u64 } else { 2 };
        let b = vec![len * m; p];
        exchange_round(pf, net, &active, &to, &to, &b, &zero, &mut locals);
    }
    locals
}
