//! `pap-model`: closed-form LogGP-style cost models for every registered
//! collective algorithm, extended with per-pattern arrival terms.
//!
//! Where `pap-sim` resolves a schedule through a discrete event queue, this
//! crate evaluates the same schedule analytically: each algorithm model
//! replays the builder's communication structure (trees, rings, recursive
//! halving/doubling, Bruck rounds, …) through the closed-form point-to-point
//! timing of [`net`], which is closed over the exact platform parameters the
//! simulator uses — latency, bandwidth (the LogGP `G`), send/recv overheads
//! (`o_s`/`o_r`), the eager/rendezvous threshold, per-byte reduction cost
//! (`γ`), and the per-node NIC serialization clocks.
//!
//! Because each rank's start time is an input, a model predicts the last
//! delay `d̂` for an arbitrary [`ArrivalPattern`], not just the no-delay
//! case. The prediction is *not* bit-identical to the simulator — messages
//! contending for a NIC are resolved in schedule order rather than global
//! timestamp order — but it tracks the simulator closely enough for
//! algorithm *selection*; the differential suite in the workspace root
//! asserts rank-order agreement (Spearman ≥ 0.8) and bounded relative error
//! on the paper's Fig. 4 grid.
//!
//! Entry point: [`predict`] (or [`predict_exits`] for per-rank exit times).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pap_arrival::ArrivalPattern;
use pap_collectives::registry::{algorithm, CollectiveKind};
use pap_collectives::{topo, CollSpec};
use pap_sim::Platform;

mod net;
mod plan;
mod rounds;
mod trees;

use std::rc::Rc;

use net::Net;
use plan::{tree_plan, TreeId, TreePlan};

/// A model prediction for one (platform, collective, pattern) cell.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Prediction {
    /// Completion of the last rank relative to the last *arrival* (the
    /// paper's `d̂`).
    pub last_delay: f64,
    /// Completion of the last rank relative to the first arrival (`d*`).
    pub total_delay: f64,
}

/// Why a prediction could not be made. Mirrors the validation performed by
/// `CollSpec::build`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// No model for this (collective, algorithm ID) pair.
    UnknownAlgorithm(CollectiveKind, u8),
    /// Invalid specification (root out of range, zero ranks, zero segment).
    Invalid(String),
    /// Pattern length does not match the platform's rank count.
    PatternMismatch {
        /// Number of delays in the arrival pattern.
        pattern: usize,
        /// Number of ranks on the platform.
        ranks: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownAlgorithm(kind, id) => {
                write!(f, "no model for {kind} algorithm {id}")
            }
            ModelError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
            ModelError::PatternMismatch { pattern, ranks } => {
                write!(f, "pattern has {pattern} delays but platform has {ranks} ranks")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Predict the arrival-aware cost of one collective under `pattern`.
pub fn predict(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
) -> Result<Prediction, ModelError> {
    if pattern.len() != platform.ranks {
        return Err(ModelError::PatternMismatch { pattern: pattern.len(), ranks: platform.ranks });
    }
    let arrivals: Vec<f64> = (0..platform.ranks).map(|r| pattern.delay_of(r)).collect();
    let exits = predict_exits(platform, spec, &arrivals)?;
    let first = arrivals.iter().cloned().fold(f64::INFINITY, f64::min);
    let last = arrivals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let end = exits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(Prediction { last_delay: end - last, total_delay: end - first })
}

/// Per-rank exit times for one collective when rank `r` starts at
/// `arrivals[r]` (seconds). This is the raw quantity [`predict`] reduces to
/// the paper's delay metrics.
pub fn predict_exits(
    platform: &Platform,
    spec: &CollSpec,
    arrivals: &[f64],
) -> Result<Vec<f64>, ModelError> {
    let p = platform.ranks;
    if p == 0 {
        return Err(ModelError::Invalid("platform has zero ranks".into()));
    }
    if arrivals.len() != p {
        return Err(ModelError::PatternMismatch { pattern: arrivals.len(), ranks: p });
    }
    if spec.root >= p {
        return Err(ModelError::Invalid(format!("root {} out of range for p={p}", spec.root)));
    }
    if spec.seg_bytes == 0 {
        return Err(ModelError::Invalid("seg_bytes must be nonzero".into()));
    }
    if algorithm(spec.kind, spec.alg).is_none() {
        return Err(ModelError::UnknownAlgorithm(spec.kind, spec.alg));
    }
    let mut net = Net::new(platform);
    let exits = dispatch(platform, &mut net, spec, arrivals)?;
    // Exits can never precede arrivals; enforce the invariant so degenerate
    // schedules (p = 1, zero-byte payloads) stay well-formed.
    Ok(exits.iter().zip(arrivals).map(|(&e, &a)| e.max(a)).collect())
}

fn seg_plan(bytes: u64, seg_bytes: u64, segmented: bool) -> Vec<u64> {
    if segmented {
        topo::seg_sizes(bytes, seg_bytes)
    } else {
        vec![bytes]
    }
}

fn tree_for(kind_alg: u8, p: usize) -> Option<(Rc<TreePlan>, bool)> {
    // (cached tree plan over vranks, segmented) for the shared reduce/bcast
    // tree IDs.
    match kind_alg {
        1 => Some((tree_plan(TreeId::Flat, p), false)),
        2 => Some((tree_plan(TreeId::Chain4, p), true)),
        3 => Some((tree_plan(TreeId::Pipeline, p), true)),
        4 => Some((tree_plan(TreeId::Binary, p), true)),
        5 => Some((tree_plan(TreeId::Binomial, p), true)),
        _ => None,
    }
}

fn dispatch(
    pf: &Platform,
    net: &mut Net,
    spec: &CollSpec,
    starts: &[f64],
) -> Result<Vec<f64>, ModelError> {
    let p = pf.ranks;
    let unknown = || ModelError::UnknownAlgorithm(spec.kind, spec.alg);
    let exits = match spec.kind {
        CollectiveKind::Reduce => match spec.alg {
            1..=5 => {
                let (plan, seg) = tree_for(spec.alg, p).ok_or_else(unknown)?;
                // Reduce ID 5 (binomial) is unsegmented in the builder.
                let seg = seg && spec.alg != 5;
                let segs = seg_plan(spec.bytes, spec.seg_bytes, seg);
                trees::tree_reduce(pf, net, spec.root, &segs, &plan, starts).finish()
            }
            6 => {
                let plan = tree_plan(TreeId::InOrderBinary, p);
                trees::in_order_reduce(pf, net, spec.root, spec.bytes, &plan, starts)
            }
            7 => rounds::reduce_rabenseifner(pf, net, spec.root, spec.bytes, starts),
            _ => return Err(unknown()),
        },
        CollectiveKind::Bcast => {
            let (plan, seg) = tree_for(spec.alg, p).ok_or_else(unknown)?;
            let segs = seg_plan(spec.bytes, spec.seg_bytes, seg);
            trees::tree_bcast(pf, net, spec.root, &segs, &plan, starts).finish()
        }
        CollectiveKind::Allreduce => match spec.alg {
            1 | 2 => {
                // Reduce to root, then broadcast from it (IDs 1 and 2 use
                // the flat/flat and binomial/binomial substrates).
                let (plan, bseg) = tree_for(if spec.alg == 1 { 1 } else { 5 }, p).unwrap();
                let rsegs = vec![spec.bytes];
                let mid =
                    trees::tree_reduce(pf, net, spec.root, &rsegs, &plan, starts).finish();
                let bsegs = seg_plan(spec.bytes, spec.seg_bytes, bseg);
                trees::tree_bcast(pf, net, spec.root, &bsegs, &plan, &mid).finish()
            }
            3 => rounds::allreduce_recdbl(pf, net, spec.bytes, starts),
            4 => rounds::allreduce_ring(pf, net, spec.bytes, 1, starts),
            5 => {
                let chunk = (spec.bytes / p as u64).max(1);
                let phases = chunk.div_ceil(spec.seg_bytes).max(1) as usize;
                rounds::allreduce_ring(pf, net, spec.bytes, phases, starts)
            }
            6 => rounds::allreduce_rabenseifner(pf, net, spec.bytes, starts),
            _ => return Err(unknown()),
        },
        CollectiveKind::Alltoall => match spec.alg {
            1 => rounds::alltoall_linear(pf, net, spec.bytes, usize::MAX, starts),
            2 => rounds::alltoall_pairwise(pf, net, spec.bytes, starts),
            3 => rounds::alltoall_bruck(pf, net, spec.bytes, starts),
            4 => rounds::alltoall_linear(pf, net, spec.bytes, 2, starts),
            _ => return Err(unknown()),
        },
        CollectiveKind::Barrier => match spec.alg {
            1 => rounds::barrier_dissemination(pf, net, starts),
            _ => return Err(unknown()),
        },
        CollectiveKind::Allgather => match spec.alg {
            1 => {
                let m = spec.bytes;
                let plan = tree_plan(TreeId::Binomial, p);
                let mid = trees::binomial_gather(pf, net, spec.root, m, &plan, starts).finish();
                // Per-block size clamped to ≥ 1 byte, mirroring the
                // builder's propagate-mode grid (p segments even at m = 0).
                let block = m.max(1);
                let bsegs = topo::seg_sizes(block * p as u64, block);
                trees::tree_bcast(pf, net, spec.root, &bsegs, &plan, &mid).finish()
            }
            2 => rounds::allgather_bruck(pf, net, spec.bytes, starts),
            3 => {
                if p.is_power_of_two() {
                    rounds::allgather_recdbl(pf, net, spec.bytes, starts)
                } else {
                    rounds::allgather_bruck(pf, net, spec.bytes, starts)
                }
            }
            4 => rounds::allgather_ring(pf, net, spec.bytes, starts),
            5 => {
                if p.is_multiple_of(2) {
                    rounds::allgather_neighbor(pf, net, spec.bytes, starts)
                } else {
                    rounds::allgather_ring(pf, net, spec.bytes, starts)
                }
            }
            _ => return Err(unknown()),
        },
        CollectiveKind::Gather => match spec.alg {
            1 => trees::linear_gather(pf, net, spec.root, spec.bytes, starts),
            2 => {
                let plan = tree_plan(TreeId::Binomial, p);
                trees::binomial_gather(pf, net, spec.root, spec.bytes, &plan, starts).finish()
            }
            _ => return Err(unknown()),
        },
        CollectiveKind::Scatter => match spec.alg {
            1 => trees::linear_scatter(pf, net, spec.root, spec.bytes, starts),
            2 => {
                let plan = tree_plan(TreeId::Binomial, p);
                trees::binomial_scatter(pf, net, spec.root, spec.bytes, &plan, starts)
            }
            _ => return Err(unknown()),
        },
    };
    Ok(exits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_collectives::registry::algorithms;
    use pap_sim::MachineId;

    fn platform(p: usize) -> Platform {
        Platform::preset(MachineId::SimCluster, p)
    }

    const ALL_KINDS: [CollectiveKind; 8] = [
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Alltoall,
        CollectiveKind::Bcast,
        CollectiveKind::Barrier,
        CollectiveKind::Allgather,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
    ];

    #[test]
    fn every_registered_algorithm_has_a_model() {
        for kind in ALL_KINDS {
            for alg in algorithms(kind) {
                for p in [1usize, 2, 3, 4, 5, 8, 13, 64] {
                    let pf = platform(p);
                    let spec = CollSpec::new(kind, alg.id, 4096);
                    let exits = predict_exits(&pf, &spec, &vec![0.0; p])
                        .unwrap_or_else(|e| panic!("{kind} alg {} p {p}: {e}", alg.id));
                    assert_eq!(exits.len(), p);
                    assert!(
                        exits.iter().all(|e| e.is_finite() && *e >= 0.0),
                        "{kind} alg {} p {p}: non-finite exit",
                        alg.id
                    );
                }
            }
        }
    }

    #[test]
    fn predictions_positive_and_ordered() {
        let pf = platform(16);
        let pattern = ArrivalPattern::new(
            "test",
            (0..16).map(|r| r as f64 * 1e-6).collect::<Vec<_>>(),
        );
        for kind in ALL_KINDS {
            for alg in algorithms(kind) {
                let spec = CollSpec::new(kind, alg.id, 1024);
                let pred = predict(&pf, &spec, &pattern).unwrap();
                assert!(pred.last_delay > 0.0, "{kind} alg {}: d̂ not positive", alg.id);
                assert!(
                    pred.total_delay >= pred.last_delay,
                    "{kind} alg {}: d* < d̂",
                    alg.id
                );
            }
        }
    }

    #[test]
    fn later_arrivals_never_speed_up_completion() {
        // Delaying one rank can only delay (or leave unchanged) the final
        // exit time — a basic sanity property of any arrival-aware model.
        let pf = platform(8);
        for kind in ALL_KINDS {
            for alg in algorithms(kind) {
                let spec = CollSpec::new(kind, alg.id, 2048);
                let base = predict_exits(&pf, &spec, &[0.0; 8]).unwrap();
                let end = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for late in 0..8 {
                    let mut arrivals = vec![0.0; 8];
                    arrivals[late] = 5e-5;
                    let exits = predict_exits(&pf, &spec, &arrivals).unwrap();
                    let e = exits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    assert!(
                        e >= end - 1e-12,
                        "{kind} alg {}: delaying rank {late} sped completion up",
                        alg.id
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_algorithm_and_bad_pattern_are_rejected() {
        let pf = platform(4);
        let spec = CollSpec::new(CollectiveKind::Reduce, 99, 64);
        assert!(matches!(
            predict_exits(&pf, &spec, &[0.0; 4]),
            Err(ModelError::UnknownAlgorithm(CollectiveKind::Reduce, 99))
        ));
        let ok = CollSpec::new(CollectiveKind::Reduce, 1, 64);
        assert!(matches!(
            predict_exits(&pf, &ok, &[0.0; 3]),
            Err(ModelError::PatternMismatch { pattern: 3, ranks: 4 })
        ));
        let bad_root = CollSpec::new(CollectiveKind::Reduce, 1, 64).with_root(7);
        assert!(matches!(predict_exits(&pf, &bad_root, &[0.0; 4]), Err(ModelError::Invalid(_))));
    }
}
