//! Analytical models for tree-structured schedules: segmented tree
//! reduce/bcast, the in-order binary reduce, and the linear/binomial
//! gather/scatter substrates.
//!
//! Each model walks the ranks of the tree in dependency order (children
//! before parents for reductions, parents before children for
//! distributions) and replays the builder's per-rank op sequence through
//! [`Net::msg`]. Non-blocking send completions that a rank only waits on at
//! the end of its schedule are accumulated in `pending` and folded into the
//! exit time by [`RankEnds::finish`].

use pap_collectives::topo::{self, TreeNode};
use pap_sim::Platform;

use crate::net::Net;

/// Per-rank clocks at the end of a modeled phase: `local` is the clock after
/// the last op issued, `pending` holds completion times of outstanding send
/// requests the rank still waits on (waitall / trailing blocking send).
pub(crate) struct RankEnds {
    pub local: Vec<f64>,
    pub pending: Vec<Vec<f64>>,
}

impl RankEnds {
    /// Exit time per rank: local clock joined with all pending completions.
    pub fn finish(&self) -> Vec<f64> {
        self.local
            .iter()
            .zip(&self.pending)
            .map(|(&l, pend)| pend.iter().fold(l, |a, &b| a.max(b)))
            .collect()
    }
}

fn depths(tree: &[TreeNode]) -> Vec<usize> {
    (0..tree.len())
        .map(|mut v| {
            let mut d = 0;
            while let Some(pv) = tree[v].parent {
                v = pv;
                d += 1;
            }
            d
        })
        .collect()
}

/// Ranks ordered so that dependencies resolve: deepest-first for gather-like
/// phases, shallowest-first for scatter-like phases. Stable sort keeps the
/// order deterministic.
fn order_by_depth(tree: &[TreeNode], deepest_first: bool) -> Vec<usize> {
    let d = depths(tree);
    let mut idx: Vec<usize> = (0..tree.len()).collect();
    if deepest_first {
        idx.sort_by_key(|&v| std::cmp::Reverse(d[v]));
    } else {
        idx.sort_by_key(|&v| d[v]);
    }
    idx
}

/// Segmented tree reduction (Reduce IDs 1–5 and the reduce halves of
/// Allreduce 1–2). `tree` is indexed by virtual rank; `starts` by actual
/// rank. Per segment, a rank receives each child's partial (blocking recv +
/// local reduce), then forwards its own partial to the parent with a
/// non-blocking send; all sends are waited at the end.
pub(crate) fn tree_reduce(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    segs: &[u64],
    tree: &[TreeNode],
    starts: &[f64],
) -> RankEnds {
    let p = tree.len();
    let nseg = segs.len();
    let gamma = pf.reduce_cost_per_byte;
    let mut local = starts.to_vec();
    let mut pending: Vec<Vec<f64>> = vec![Vec::new(); p];
    // pres[v][s]: vrank v's clock just before its isend of segment s.
    let mut pres = vec![vec![f64::NAN; nseg]; p];
    for &v in &order_by_depth(tree, true) {
        let r = topo::actual(v, root, p);
        let mut t = local[r];
        for (s, &sb) in segs.iter().enumerate() {
            for &cv in &tree[v].children {
                let c = topo::actual(cv, root, p);
                t += pf.recv_overhead;
                let out = net.msg(c, r, sb, pres[cv][s], t);
                pending[c].push(out.send_done);
                t = out.recv_done + sb as f64 * gamma;
            }
            if tree[v].parent.is_some() {
                pres[v][s] = t;
                t += pf.send_overhead;
            }
        }
        local[r] = t;
    }
    RankEnds { local, pending }
}

/// Segmented tree broadcast (Bcast IDs 1–5, including propagate mode — the
/// root's init is free either way). Per segment, a rank blocks on the recv
/// from its parent, then issues one non-blocking send per child.
pub(crate) fn tree_bcast(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    segs: &[u64],
    tree: &[TreeNode],
    starts: &[f64],
) -> RankEnds {
    let p = tree.len();
    let nseg = segs.len();
    let mut local = starts.to_vec();
    let mut pending: Vec<Vec<f64>> = vec![Vec::new(); p];
    // pres[cv][s]: the parent's clock just before its isend of segment s to
    // child vrank cv.
    let mut pres = vec![vec![f64::NAN; nseg]; p];
    for &v in &order_by_depth(tree, false) {
        let r = topo::actual(v, root, p);
        let mut t = local[r];
        for (s, &sb) in segs.iter().enumerate() {
            if let Some(pv) = tree[v].parent {
                let pr = topo::actual(pv, root, p);
                t += pf.recv_overhead;
                let out = net.msg(pr, r, sb, pres[v][s], t);
                pending[pr].push(out.send_done);
                t = out.recv_done;
            }
            for &cv in &tree[v].children {
                pres[cv][s] = t;
                t += pf.send_overhead;
            }
        }
        local[r] = t;
    }
    RankEnds { local, pending }
}

/// Reduce ID 6: in-order binary tree over actual ranks rooted at `p − 1`,
/// whole-vector blocking sends, plus the final forward to `spec.root` when
/// it is not `p − 1`.
pub(crate) fn in_order_reduce(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    bytes: u64,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let tree: Vec<TreeNode> = (0..p).map(|r| topo::in_order_binary(r, p)).collect();
    let gamma = pf.reduce_cost_per_byte;
    let mut local = starts.to_vec();
    let mut pending: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut pres = vec![f64::NAN; p];
    for &r in &order_by_depth(&tree, true) {
        let mut t = local[r];
        for &c in &tree[r].children {
            t += pf.recv_overhead;
            let out = net.msg(c, r, bytes, pres[c], t);
            pending[c].push(out.send_done);
            t = out.recv_done + bytes as f64 * gamma;
        }
        if tree[r].parent.is_some() {
            // Blocking send to the parent: it is this rank's last op, so the
            // true completion is folded in via `pending`.
            pres[r] = t;
            t += pf.send_overhead;
        }
        local[r] = t;
    }
    let mut exits = RankEnds { local, pending }.finish();
    if root != p - 1 && p > 1 {
        // Rank p−1 forwards the result to the actual root.
        let tr = exits[root] + pf.recv_overhead;
        let out = net.msg(p - 1, root, bytes, exits[p - 1], tr);
        exits[p - 1] = out.send_done;
        exits[root] = out.recv_done;
    }
    exits
}

/// Size of the binomial subtree rooted at virtual rank `v` (mirrors the
/// builder's `subtree_size` in `pap-collectives`).
fn subtree_size(v: usize, p: usize) -> u64 {
    if v == 0 {
        p as u64
    } else {
        (1u64 << v.trailing_zeros()).min((p - v) as u64)
    }
}

/// Gather ID 1: every non-root rank blocking-sends its block to the root,
/// which receives them blocking in rank order.
pub(crate) fn linear_gather(pf: &Platform, net: &mut Net, root: usize, m: u64, starts: &[f64]) -> Vec<f64> {
    let mut exits = starts.to_vec();
    let mut t = starts[root];
    for (i, &start) in starts.iter().enumerate() {
        if i == root {
            continue;
        }
        t += pf.recv_overhead;
        let out = net.msg(i, root, m, start, t);
        exits[i] = out.send_done;
        t = out.recv_done;
    }
    exits[root] = t;
    exits
}

/// Gather ID 2: binomial gather over virtual ranks; children are drained in
/// reverse order, each edge carries the child's whole subtree.
pub(crate) fn binomial_gather(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    m: u64,
    starts: &[f64],
) -> RankEnds {
    let p = starts.len();
    let tree: Vec<TreeNode> = (0..p).map(|v| topo::binomial(v, p)).collect();
    let mut local = starts.to_vec();
    let mut pending: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut pres = vec![f64::NAN; p];
    for &v in &order_by_depth(&tree, true) {
        let r = topo::actual(v, root, p);
        let mut t = local[r];
        for &cv in tree[v].children.iter().rev() {
            let c = topo::actual(cv, root, p);
            t += pf.recv_overhead;
            let out = net.msg(c, r, subtree_size(cv, p) * m, pres[cv], t);
            pending[c].push(out.send_done);
            t = out.recv_done;
        }
        if tree[v].parent.is_some() {
            pres[v] = t;
            t += pf.send_overhead;
        }
        local[r] = t;
    }
    RankEnds { local, pending }
}

/// Scatter ID 1: the root blocking-sends each rank's block in rank order;
/// every non-root rank's single op is the blocking recv.
pub(crate) fn linear_scatter(pf: &Platform, net: &mut Net, root: usize, m: u64, starts: &[f64]) -> Vec<f64> {
    let mut exits = starts.to_vec();
    let mut t = starts[root];
    for (i, &start) in starts.iter().enumerate() {
        if i == root {
            continue;
        }
        let tr = start + pf.recv_overhead;
        let out = net.msg(root, i, m, t, tr);
        t = out.send_done;
        exits[i] = out.recv_done;
    }
    exits[root] = t;
    exits
}

/// Scatter ID 2: binomial scatter over virtual ranks; a rank first blocks on
/// the recv from its parent, then blocking-sends each child its subtree
/// (children in reverse order).
pub(crate) fn binomial_scatter(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    m: u64,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let tree: Vec<TreeNode> = (0..p).map(|v| topo::binomial(v, p)).collect();
    // begin[r]: recv completion (root: arrival) — set by the parent before
    // rank r is processed.
    let mut begin = starts.to_vec();
    let mut exits = starts.to_vec();
    for &v in &order_by_depth(&tree, false) {
        let r = topo::actual(v, root, p);
        let mut t = begin[r];
        for &cv in tree[v].children.iter().rev() {
            let c = topo::actual(cv, root, p);
            let tr = starts[c] + pf.recv_overhead;
            let out = net.msg(r, c, subtree_size(cv, p) * m, t, tr);
            t = out.send_done;
            begin[c] = out.recv_done;
        }
        exits[r] = t;
    }
    exits
}
