//! Analytical models for tree-structured schedules: segmented tree
//! reduce/bcast, the in-order binary reduce, and the linear/binomial
//! gather/scatter substrates.
//!
//! Each model walks the ranks of the tree in dependency order (children
//! before parents for reductions, parents before children for
//! distributions) and replays the builder's per-rank op sequence through
//! [`Net::msg`]. Non-blocking send completions that a rank only waits on at
//! the end of its schedule are folded into a running per-rank maximum in
//! `pending` and joined with the exit time by [`RankEnds::finish`]. Tree
//! topologies and replay orders come pre-built from [`crate::plan`]; the
//! per-eval state here is a handful of flat buffers.

use pap_sim::Platform;

use crate::net::Net;
use crate::plan::TreePlan;

/// Per-rank clocks at the end of a modeled phase: `local` is the clock after
/// the last op issued, `pending[r]` the latest completion among rank `r`'s
/// outstanding send requests (waitall / trailing blocking send), or `−∞` if
/// none.
pub(crate) struct RankEnds {
    pub local: Vec<f64>,
    pub pending: Vec<f64>,
}

impl RankEnds {
    fn new(starts: &[f64]) -> RankEnds {
        RankEnds { local: starts.to_vec(), pending: vec![f64::NEG_INFINITY; starts.len()] }
    }

    /// Exit time per rank: local clock joined with all pending completions.
    pub fn finish(&self) -> Vec<f64> {
        self.local.iter().zip(&self.pending).map(|(&l, &pend)| l.max(pend)).collect()
    }
}

/// Segmented tree reduction (Reduce IDs 1–5 and the reduce halves of
/// Allreduce 1–2). The plan's tree is indexed by virtual rank; `starts` by
/// actual rank. Per segment, a rank receives each child's partial (blocking
/// recv + local reduce), then forwards its own partial to the parent with a
/// non-blocking send; all sends are waited at the end.
pub(crate) fn tree_reduce(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    segs: &[u64],
    plan: &TreePlan,
    starts: &[f64],
) -> RankEnds {
    let p = plan.nodes.len();
    let nseg = segs.len();
    let gamma = pf.reduce_cost_per_byte;
    let mut ends = RankEnds::new(starts);
    // pres[v * nseg + s]: vrank v's clock just before its isend of segment s.
    let mut pres = vec![f64::NAN; p * nseg];
    for &v in &plan.up {
        let node = &plan.nodes[v];
        let r = actual(v, root, p);
        let mut t = ends.local[r];
        for (s, &sb) in segs.iter().enumerate() {
            for &cv in &node.children {
                let c = actual(cv, root, p);
                t += pf.recv_overhead;
                let out = net.msg(c, r, sb, pres[cv * nseg + s], t);
                ends.pending[c] = ends.pending[c].max(out.send_done);
                t = out.recv_done + sb as f64 * gamma;
            }
            if node.parent.is_some() {
                pres[v * nseg + s] = t;
                t += pf.send_overhead;
            }
        }
        ends.local[r] = t;
    }
    ends
}

/// Segmented tree broadcast (Bcast IDs 1–5, including propagate mode — the
/// root's init is free either way). Per segment, a rank blocks on the recv
/// from its parent, then issues one non-blocking send per child.
pub(crate) fn tree_bcast(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    segs: &[u64],
    plan: &TreePlan,
    starts: &[f64],
) -> RankEnds {
    let p = plan.nodes.len();
    let nseg = segs.len();
    let mut ends = RankEnds::new(starts);
    // pres[cv * nseg + s]: the parent's clock just before its isend of
    // segment s to child vrank cv.
    let mut pres = vec![f64::NAN; p * nseg];
    for &v in &plan.down {
        let node = &plan.nodes[v];
        let r = actual(v, root, p);
        let mut t = ends.local[r];
        for (s, &sb) in segs.iter().enumerate() {
            if let Some(pv) = node.parent {
                let pr = actual(pv, root, p);
                t += pf.recv_overhead;
                let out = net.msg(pr, r, sb, pres[v * nseg + s], t);
                ends.pending[pr] = ends.pending[pr].max(out.send_done);
                t = out.recv_done;
            }
            for &cv in &node.children {
                pres[cv * nseg + s] = t;
                t += pf.send_overhead;
            }
        }
        ends.local[r] = t;
    }
    ends
}

/// Reduce ID 6: in-order binary tree over actual ranks rooted at `p − 1`
/// (the plan's tree is already over actual ranks), whole-vector blocking
/// sends, plus the final forward to `spec.root` when it is not `p − 1`.
pub(crate) fn in_order_reduce(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    bytes: u64,
    plan: &TreePlan,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    let gamma = pf.reduce_cost_per_byte;
    let mut ends = RankEnds::new(starts);
    let mut pres = vec![f64::NAN; p];
    for &r in &plan.up {
        let node = &plan.nodes[r];
        let mut t = ends.local[r];
        for &c in &node.children {
            t += pf.recv_overhead;
            let out = net.msg(c, r, bytes, pres[c], t);
            ends.pending[c] = ends.pending[c].max(out.send_done);
            t = out.recv_done + bytes as f64 * gamma;
        }
        if node.parent.is_some() {
            // Blocking send to the parent: it is this rank's last op, so the
            // true completion is folded in via `pending`.
            pres[r] = t;
            t += pf.send_overhead;
        }
        ends.local[r] = t;
    }
    let mut exits = ends.finish();
    if root != p - 1 && p > 1 {
        // Rank p−1 forwards the result to the actual root.
        let tr = exits[root] + pf.recv_overhead;
        let out = net.msg(p - 1, root, bytes, exits[p - 1], tr);
        exits[p - 1] = out.send_done;
        exits[root] = out.recv_done;
    }
    exits
}

/// Virtual-to-actual rank rotation (mirrors `topo::actual`, local so the
/// per-message hot loop stays branch-cheap).
#[inline(always)]
fn actual(v: usize, root: usize, p: usize) -> usize {
    let a = v + root;
    if a >= p {
        a - p
    } else {
        a
    }
}

/// Size of the binomial subtree rooted at virtual rank `v` (mirrors the
/// builder's `subtree_size` in `pap-collectives`).
fn subtree_size(v: usize, p: usize) -> u64 {
    if v == 0 {
        p as u64
    } else {
        (1u64 << v.trailing_zeros()).min((p - v) as u64)
    }
}

/// Gather ID 1: every non-root rank blocking-sends its block to the root,
/// which receives them blocking in rank order.
pub(crate) fn linear_gather(pf: &Platform, net: &mut Net, root: usize, m: u64, starts: &[f64]) -> Vec<f64> {
    let mut exits = starts.to_vec();
    let mut t = starts[root];
    for (i, &start) in starts.iter().enumerate() {
        if i == root {
            continue;
        }
        t += pf.recv_overhead;
        let out = net.msg(i, root, m, start, t);
        exits[i] = out.send_done;
        t = out.recv_done;
    }
    exits[root] = t;
    exits
}

/// Gather ID 2: binomial gather over virtual ranks; children are drained in
/// reverse order, each edge carries the child's whole subtree.
pub(crate) fn binomial_gather(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    m: u64,
    plan: &TreePlan,
    starts: &[f64],
) -> RankEnds {
    let p = starts.len();
    let mut ends = RankEnds::new(starts);
    let mut pres = vec![f64::NAN; p];
    for &v in &plan.up {
        let node = &plan.nodes[v];
        let r = actual(v, root, p);
        let mut t = ends.local[r];
        for &cv in node.children.iter().rev() {
            let c = actual(cv, root, p);
            t += pf.recv_overhead;
            let out = net.msg(c, r, subtree_size(cv, p) * m, pres[cv], t);
            ends.pending[c] = ends.pending[c].max(out.send_done);
            t = out.recv_done;
        }
        if node.parent.is_some() {
            pres[v] = t;
            t += pf.send_overhead;
        }
        ends.local[r] = t;
    }
    ends
}

/// Scatter ID 1: the root blocking-sends each rank's block in rank order;
/// every non-root rank's single op is the blocking recv.
pub(crate) fn linear_scatter(pf: &Platform, net: &mut Net, root: usize, m: u64, starts: &[f64]) -> Vec<f64> {
    let mut exits = starts.to_vec();
    let mut t = starts[root];
    for (i, &start) in starts.iter().enumerate() {
        if i == root {
            continue;
        }
        let tr = start + pf.recv_overhead;
        let out = net.msg(root, i, m, t, tr);
        t = out.send_done;
        exits[i] = out.recv_done;
    }
    exits[root] = t;
    exits
}

/// Scatter ID 2: binomial scatter over virtual ranks; a rank first blocks on
/// the recv from its parent, then blocking-sends each child its subtree
/// (children in reverse order).
pub(crate) fn binomial_scatter(
    pf: &Platform,
    net: &mut Net,
    root: usize,
    m: u64,
    plan: &TreePlan,
    starts: &[f64],
) -> Vec<f64> {
    let p = starts.len();
    // begin[r]: recv completion (root: arrival) — set by the parent before
    // rank r is processed.
    let mut begin = starts.to_vec();
    let mut exits = starts.to_vec();
    for &v in &plan.down {
        let node = &plan.nodes[v];
        let r = actual(v, root, p);
        let mut t = begin[r];
        for &cv in node.children.iter().rev() {
            let c = actual(cv, root, p);
            let tr = starts[c] + pf.recv_overhead;
            let out = net.msg(r, c, subtree_size(cv, p) * m, t, tr);
            t = out.send_done;
            begin[c] = out.recv_done;
        }
        exits[r] = t;
    }
    exits
}
