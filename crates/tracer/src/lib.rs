//! # pap-tracer — collective tracing (PMPI substitute)
//!
//! §V-A of the paper: a small tracing library that records, for every
//! collective call, each process's *arrival* and *exit* timestamp through a
//! synchronized clock, with optional **process sampling** and **call
//! sampling** (every k-th call) to bound trace size. The aggregated average
//! per-process delay is the application's replayable arrival pattern
//! ("FT-Scenario", Fig. 1).
//!
//! In the simulator, arrival/exit instants come from labelled segment
//! [`pap_sim::engine::PhaseRecord`]s; this crate filters and samples them, converts true
//! times to *observed* times through each node's calibrated clock, and
//! aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pap_arrival::MeasuredPattern;
use pap_clocksync::{ClusterClocks, SyncedClock};
use pap_sim::engine::RunOutcome;
#[cfg(test)]
use pap_sim::engine::PhaseRecord;
use serde::{Deserialize, Serialize};

/// Sampling configuration (§V-A: "features for process and collective call
/// sampling").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TracerConfig {
    /// Record every `call_stride`-th call (1 = every call).
    pub call_stride: usize,
    /// Record every `rank_stride`-th rank (1 = every rank).
    pub rank_stride: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig { call_stride: 1, rank_stride: 1 }
    }
}

/// One traced collective call: per-rank observed arrival and exit times.
/// Unsampled ranks hold `NaN`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallRecord {
    /// Call sequence number (the label's `seq`).
    pub seq: u32,
    /// Observed arrival time per rank.
    pub arrivals: Vec<f64>,
    /// Observed exit time per rank.
    pub exits: Vec<f64>,
}

impl CallRecord {
    fn sampled(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.arrivals.iter().zip(&self.exits).filter(|(a, _)| !a.is_nan()).map(|(&a, &e)| (a, e))
    }

    /// Total delay `d* = max(e_i) − min(a_i)` (Eq. 1), over sampled ranks.
    pub fn total_delay(&self) -> f64 {
        let min_a = self.sampled().map(|(a, _)| a).fold(f64::INFINITY, f64::min);
        let max_e = self.sampled().map(|(_, e)| e).fold(f64::NEG_INFINITY, f64::max);
        max_e - min_a
    }

    /// Last delay `d̂ = max(e_i) − max(a_i)` (Eq. 2), over sampled ranks.
    pub fn last_delay(&self) -> f64 {
        let max_a = self.sampled().map(|(a, _)| a).fold(f64::NEG_INFINITY, f64::max);
        let max_e = self.sampled().map(|(_, e)| e).fold(f64::NEG_INFINITY, f64::max);
        max_e - max_a
    }

    /// Per-rank delay relative to the first sampled arriver; NaN for
    /// unsampled ranks.
    pub fn delays(&self) -> Vec<f64> {
        let min_a = self.sampled().map(|(a, _)| a).fold(f64::INFINITY, f64::min);
        self.arrivals.iter().map(|&a| a - min_a).collect()
    }
}

/// A trace of all sampled calls of one collective kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectiveTrace {
    /// The label kind that was traced (e.g.
    /// `CollectiveKind::Alltoall.label_kind()`).
    pub kind: u32,
    /// Number of ranks in the job.
    pub ranks: usize,
    /// Sampled calls, in sequence order.
    pub calls: Vec<CallRecord>,
}

impl CollectiveTrace {
    /// Extract a trace from a finished run.
    ///
    /// `observer(rank, true_time)` converts a true simulation instant into
    /// the timestamp the rank would record (its calibrated clock); pass
    /// [`ideal_observer`] when clocks are perfect.
    pub fn from_outcome(
        outcome: &RunOutcome,
        ranks: usize,
        kind: u32,
        cfg: &TracerConfig,
        mut observer: impl FnMut(usize, f64) -> f64,
    ) -> Self {
        assert!(cfg.call_stride >= 1 && cfg.rank_stride >= 1, "strides must be >= 1");
        // One pass over the phase log: bucket matching phase indices by seq.
        // The BTreeMap iterates seqs in ascending order and each bucket keeps
        // log order, so the observer sees timestamps in the same order as the
        // old per-seq rescan did — just without the O(calls × phases) cost.
        let mut by_seq: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
        for (idx, ph) in outcome.phases.iter().enumerate() {
            if ph.label.kind == kind {
                by_seq.entry(ph.label.seq).or_default().push(idx);
            }
        }
        let mut calls = Vec::new();
        for (i, (&seq, phase_idxs)) in by_seq.iter().enumerate() {
            if i % cfg.call_stride != 0 {
                continue;
            }
            let mut arrivals = vec![f64::NAN; ranks];
            let mut exits = vec![f64::NAN; ranks];
            for &idx in phase_idxs {
                let ph = &outcome.phases[idx];
                if ph.rank.is_multiple_of(cfg.rank_stride) {
                    arrivals[ph.rank] = observer(ph.rank, ph.enter);
                    exits[ph.rank] = observer(ph.rank, ph.exit);
                }
            }
            calls.push(CallRecord { seq, arrivals, exits });
        }
        CollectiveTrace { kind, ranks, calls }
    }

    /// Average per-rank delay across all sampled calls (the series of
    /// Fig. 1). NaN for unsampled ranks.
    pub fn avg_delays(&self) -> Vec<f64> {
        let mut sum = vec![0.0; self.ranks];
        let mut n = 0usize;
        for c in &self.calls {
            for (s, d) in sum.iter_mut().zip(c.delays()) {
                *s += d;
            }
            n += 1;
        }
        sum.iter().map(|s| s / n.max(1) as f64).collect()
    }

    /// Largest single-call skew observed (sizes the artificial patterns in
    /// the Fig. 8 experiments).
    pub fn max_observed_skew(&self) -> f64 {
        self.calls
            .iter()
            .flat_map(|c| {
                let min_a = c.sampled().map(|(a, _)| a).fold(f64::INFINITY, f64::min);
                let max_a = c.sampled().map(|(a, _)| a).fold(f64::NEG_INFINITY, f64::max);
                std::iter::once(max_a - min_a)
            })
            .fold(0.0, f64::max)
    }

    /// Export as a replayable measured pattern (the "FT-Scenario").
    /// Requires full rank sampling (stride 1).
    pub fn to_measured_pattern(&self, name: &str) -> MeasuredPattern {
        let arrivals: Vec<Vec<f64>> = self.calls.iter().map(|c| c.arrivals.clone()).collect();
        MeasuredPattern::from_call_arrivals(name, &arrivals)
    }

    /// Number of sampled calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether no calls were sampled.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }
}

/// Observer for perfect clocks (the simulation setting).
pub fn ideal_observer(_rank: usize, t: f64) -> f64 {
    t
}

/// Observer that reads timestamps through each node's calibrated clock.
pub fn synced_observer<'a>(
    clocks: &'a ClusterClocks,
    calib: &'a [SyncedClock],
    node_of: impl Fn(usize) -> usize + 'a,
) -> impl FnMut(usize, f64) -> f64 + 'a {
    move |rank, t| pap_clocksync::observe(clocks, calib, node_of(rank), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_sim::Label;

    /// Build a fake outcome with two calls of kind 3 on 4 ranks.
    fn fake_outcome() -> RunOutcome {
        let mut phases = Vec::new();
        for seq in 0..2u32 {
            for rank in 0..4usize {
                let enter = seq as f64 + rank as f64 * 0.1;
                phases.push(PhaseRecord {
                    rank,
                    label: Label { kind: 3, seq },
                    enter,
                    exit: enter + 0.5,
                });
            }
        }
        RunOutcome {
            finish: vec![0.0; 4],
            phases,
            slots: None,
            data_errors: vec![],
            events: 0,
            messages: 0,
            msg_events: None,
        }
    }

    #[test]
    fn trace_extracts_calls_and_delays() {
        let out = fake_outcome();
        let tr = CollectiveTrace::from_outcome(&out, 4, 3, &TracerConfig::default(), ideal_observer);
        assert_eq!(tr.len(), 2);
        let avg = tr.avg_delays();
        for (r, d) in avg.iter().enumerate() {
            assert!((d - r as f64 * 0.1).abs() < 1e-12);
        }
        assert!((tr.max_observed_skew() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn metrics_match_equations_1_and_2() {
        let out = fake_outcome();
        let tr = CollectiveTrace::from_outcome(&out, 4, 3, &TracerConfig::default(), ideal_observer);
        let c = &tr.calls[0];
        // arrivals 0.0..0.3, exits 0.5..0.8.
        assert!((c.total_delay() - 0.8).abs() < 1e-12); // max e - min a
        assert!((c.last_delay() - 0.5).abs() < 1e-12); // max e - max a
        assert!(c.last_delay() <= c.total_delay());
    }

    #[test]
    fn call_sampling_keeps_every_kth() {
        let out = fake_outcome();
        let cfg = TracerConfig { call_stride: 2, rank_stride: 1 };
        let tr = CollectiveTrace::from_outcome(&out, 4, 3, &cfg, ideal_observer);
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.calls[0].seq, 0);
    }

    #[test]
    fn rank_sampling_leaves_nan_holes() {
        let out = fake_outcome();
        let cfg = TracerConfig { call_stride: 1, rank_stride: 2 };
        let tr = CollectiveTrace::from_outcome(&out, 4, 3, &cfg, ideal_observer);
        let c = &tr.calls[0];
        assert!(!c.arrivals[0].is_nan() && !c.arrivals[2].is_nan());
        assert!(c.arrivals[1].is_nan() && c.arrivals[3].is_nan());
        // Metrics still work over the sampled subset.
        assert!((c.last_delay() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrong_kind_is_ignored() {
        let out = fake_outcome();
        let tr = CollectiveTrace::from_outcome(&out, 4, 9, &TracerConfig::default(), ideal_observer);
        assert!(tr.is_empty());
    }

    #[test]
    fn measured_pattern_round_trip() {
        let out = fake_outcome();
        let tr = CollectiveTrace::from_outcome(&out, 4, 3, &TracerConfig::default(), ideal_observer);
        let mp = tr.to_measured_pattern("test");
        assert_eq!(mp.len(), 4);
        assert!((mp.avg_delay[3] - 0.3).abs() < 1e-12);
        let pat = mp.to_pattern();
        assert!((pat.max_skew() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let out = fake_outcome();
        let tr = CollectiveTrace::from_outcome(&out, 4, 3, &TracerConfig::default(), ideal_observer);
        let js = serde_json::to_string(&tr).unwrap();
        let back: CollectiveTrace = serde_json::from_str(&js).unwrap();
        assert_eq!(back.len(), tr.len());
        assert_eq!(back.ranks, 4);
    }
}
