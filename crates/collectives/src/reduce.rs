//! `MPI_Reduce` algorithms (Table II IDs 1–7).
//!
//! All tree algorithms share one engine: a (possibly segmented) reduction
//! along a tree, where each rank receives each child's partial per segment,
//! folds it into its accumulator, and forwards the segment to its parent
//! with a non-blocking send (pipelining across segments).
//!
//! Slot convention: slot 0 = accumulator/result, slot 1 = receive temp.

use pap_sim::data::{BlockFilter, Value};
use pap_sim::Op;

use crate::spec::{BuildError, Built, CollSpec};
use crate::topo::{self, TreeNode};

/// Build the reduce schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(tree_reduce(spec, p, false, |v| topo::flat(v, p))),
        2 => Ok(tree_reduce(spec, p, true, |v| topo::chain(v, p, 4))),
        3 => Ok(tree_reduce(spec, p, true, |v| topo::pipeline(v, p))),
        4 => Ok(tree_reduce(spec, p, true, |v| topo::binary(v, p))),
        5 => Ok(tree_reduce(spec, p, false, |v| topo::binomial(v, p))),
        6 => Ok(in_order_binary(spec, p)),
        7 => Ok(rabenseifner(spec, p)),
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// Generic segmented tree reduction over virtual ranks (tree re-rooted at
/// `spec.root`).
fn tree_reduce(spec: &CollSpec, p: usize, segmented: bool, tree_of: impl Fn(usize) -> TreeNode) -> Built {
    let segs = if segmented { topo::seg_sizes(spec.bytes, spec.seg_bytes) } else { vec![spec.bytes] };
    let nseg = segs.len();
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let v = topo::vrank(me, spec.root, p);
        let node = tree_of(v);
        let mut ops = Vec::with_capacity(2 + nseg * (node.children.len() * 2 + 1));
        ops.push(Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, nseg as u32) });
        for (s, &seg_bytes) in segs.iter().enumerate() {
            let tag = spec.tag_base + s as u64;
            for &cv in &node.children {
                let child = topo::actual(cv, spec.root, p);
                ops.push(Op::recv(child, tag, 1));
                ops.push(Op::ReduceLocal { from: 1, into: 0, bytes: seg_bytes });
            }
            if let Some(pv) = node.parent {
                let parent = topo::actual(pv, spec.root, p);
                ops.push(Op::isend_part(
                    parent,
                    tag,
                    seg_bytes,
                    0,
                    BlockFilter::SegRange(s as u32, s as u32 + 1),
                    s,
                ));
            }
        }
        if node.parent.is_some() && nseg > 0 {
            ops.push(Op::waitall((0..nseg).collect()));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: nseg as u32 }
}

/// ID 6: reduction along an "in-order" binary tree over actual ranks, rooted
/// at rank `p-1`; the result is forwarded to the requested root if needed.
fn in_order_binary(spec: &CollSpec, p: usize) -> Built {
    let bytes = spec.bytes;
    let forward_tag = spec.tag_base + 0x8000;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let node = topo::in_order_binary(me, p);
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, 1) }];
        for &child in &node.children {
            ops.push(Op::recv(child, spec.tag_base, 1));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes });
        }
        if let Some(parent) = node.parent {
            ops.push(Op::send(parent, spec.tag_base, bytes, 0));
        }
        // Forward the finished result from the tree root (p-1) to the
        // requested root.
        if spec.root != p - 1 {
            if me == p - 1 {
                ops.push(Op::send(spec.root, forward_tag, bytes, 0));
            } else if me == spec.root {
                ops.push(Op::recv(p - 1, forward_tag, 1));
                ops.push(Op::CopySlot { from: 1, into: 0 });
            }
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: 1 }
}

/// ID 7: Rabenseifner — recursive-halving reduce-scatter followed by a
/// binomial gather to the root. Non-power-of-two process counts fold the
/// excess ranks into partners first.
fn rabenseifner(spec: &CollSpec, p: usize) -> Built {
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let steps = p2.trailing_zeros() as usize;
    let chunks = topo::split_chunks(spec.bytes, p2);
    // Prefix sums for O(1) range-byte queries.
    let mut prefix = vec![0u64; p2 + 1];
    for (i, &c) in chunks.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let range_bytes = |lo: usize, hi: usize| prefix[hi] - prefix[lo];

    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let v = topo::vrank(me, spec.root, p);
        let act = |w: usize| topo::actual(w, spec.root, p);
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, p2 as u32) }];

        if v >= p2 {
            // Excess rank: contribute the whole vector to the partner, done.
            ops.push(Op::send(act(v - p2), spec.tag_base, spec.bytes, 0));
            rank_ops.push(ops);
            continue;
        }
        if v < r {
            ops.push(Op::recv(act(v + p2), spec.tag_base, 1));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes: spec.bytes });
        }

        // Recursive halving: after step t, this rank holds the partial
        // reduction of chunk interval [lo, hi).
        let (mut lo, mut hi) = (0usize, p2);
        for t in 0..steps {
            let d = p2 >> (t + 1);
            let partner = v ^ d;
            debug_assert_eq!(hi - lo, 2 * d);
            let mid = lo + d;
            let (keep, send) = if v & d == 0 { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
            let tag = spec.tag_base + 1 + t as u64;
            ops.push(Op::isend_part(
                act(partner),
                tag,
                range_bytes(send.0, send.1),
                0,
                BlockFilter::SegRange(send.0 as u32, send.1 as u32),
                0,
            ));
            ops.push(Op::irecv(act(partner), tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes: range_bytes(keep.0, keep.1) });
            lo = keep.0;
            hi = keep.1;
        }
        // After halving, each active vrank owns exactly its own chunk.
        debug_assert!(steps == 0 || (lo == v && hi == v + 1));

        // Binomial gather of the fully reduced chunks to vrank 0.
        for t in 0..steps {
            let d = 1 << t;
            let tag = spec.tag_base + 1 + (steps + t) as u64;
            if v & d != 0 {
                ops.push(Op::send_part(
                    act(v - d),
                    tag,
                    range_bytes(lo, hi),
                    0,
                    BlockFilter::SegRange(lo as u32, hi as u32),
                ));
                break;
            } else {
                let donor = v + d;
                ops.push(Op::recv(act(donor), tag, 1));
                // The incoming chunks are complete; they replace whatever
                // stale partials remained in the accumulator.
                ops.push(Op::OverwriteMove { from: 1, into: 0 });
                // Donor owned [v+d, v+2d); our interval doubles.
                hi = lo + 2 * d;
            }
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p2 as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;

    fn spec(alg: u8, bytes: u64) -> CollSpec {
        CollSpec::new(CollectiveKind::Reduce, alg, bytes)
    }

    #[test]
    fn linear_has_flat_message_structure() {
        let b = build(&spec(1, 64), 5).unwrap();
        // Root posts 4 recvs + 4 reduces + init; leaves post init + isend + waitall.
        assert_eq!(b.nseg, 1);
        let root_recvs = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Recv { .. })).count();
        assert_eq!(root_recvs, 4);
        let leaf_sends = b.rank_ops[3].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(leaf_sends, 1);
    }

    #[test]
    fn segmented_algorithms_emit_per_segment_messages() {
        let s = spec(3, 64 * 1024).with_seg_bytes(8192); // pipeline, 8 segments
        let b = build(&s, 4).unwrap();
        assert_eq!(b.nseg, 8);
        // Middle-of-chain rank: 8 recvs, 8 reduces, 8 isends.
        let ops = &b.rank_ops[1];
        assert_eq!(ops.iter().filter(|o| matches!(o, Op::Recv { .. })).count(), 8);
        assert_eq!(ops.iter().filter(|o| matches!(o, Op::Isend { .. })).count(), 8);
    }

    #[test]
    fn small_messages_are_single_segment() {
        let b = build(&spec(3, 16), 4).unwrap();
        assert_eq!(b.nseg, 1);
    }

    #[test]
    fn in_order_binary_forwards_to_root() {
        let b = build(&spec(6, 64), 8).unwrap();
        // Rank 7 (tree root) must send to rank 0 (requested root).
        let fw = b.rank_ops[7]
            .iter()
            .any(|o| matches!(o, Op::Send { to: 0, .. }));
        assert!(fw, "tree root must forward the result");
        // With root == p-1 no forwarding happens.
        let b2 = build(&spec(6, 64).with_root(7), 8).unwrap();
        let fw2 = b2.rank_ops[7].iter().any(|o| matches!(o, Op::Send { .. }));
        assert!(!fw2);
    }

    #[test]
    fn rabenseifner_nseg_is_pow2_floor() {
        assert_eq!(build(&spec(7, 1024), 8).unwrap().nseg, 8);
        assert_eq!(build(&spec(7, 1024), 12).unwrap().nseg, 8);
        assert_eq!(build(&spec(7, 1024), 5).unwrap().nseg, 4);
    }

    #[test]
    fn rabenseifner_excess_rank_sends_once() {
        let b = build(&spec(7, 1024), 5).unwrap();
        // p2=4: rank with vrank 4 (== rank 4, root 0) sends once, no recvs.
        let ops = &b.rank_ops[4];
        assert_eq!(ops.iter().filter(|o| matches!(o, Op::Send { .. })).count(), 1);
        assert!(!ops.iter().any(|o| matches!(o, Op::Recv { .. } | Op::Irecv { .. })));
    }

    #[test]
    fn single_rank_degenerates() {
        for alg in 1..=7u8 {
            let b = build(&spec(alg, 256), 1).unwrap();
            assert_eq!(b.rank_ops.len(), 1);
            assert!(
                !b.rank_ops[0].iter().any(|o| matches!(
                    o,
                    Op::Send { .. } | Op::Recv { .. } | Op::Isend { .. } | Op::Irecv { .. }
                )),
                "alg {alg} must not communicate at p=1"
            );
        }
    }

    #[test]
    fn two_ranks_all_algorithms() {
        for alg in 1..=7u8 {
            let b = build(&spec(alg, 256), 2).unwrap();
            assert_eq!(b.rank_ops.len(), 2, "alg {alg}");
        }
    }
}
