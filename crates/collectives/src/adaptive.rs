//! Arrival-pattern-aware collective construction (extension beyond the
//! paper).
//!
//! The paper *selects* among static algorithms; its related work (Marendić
//! et al., Proficz) goes further and *adapts the algorithm itself* to a
//! known arrival pattern. This module implements that idea for `MPI_Reduce`:
//! given per-rank expected delays, build a reduction tree in which
//! early-arriving ranks sit deep (their partials climb while late ranks are
//! still absent) and the latest ranks sit near the top — minimizing the
//! post-last-arrival critical path, i.e. exactly the paper's `d̂` metric.
//!
//! Construction ("skew ladder"): sort ranks by expected delay. Group the
//! earliest arrivals into binomial subtrees of bounded size; chain the
//! subtree roots in arrival order, so each later-arriving rank receives one
//! aggregated partial that is already waiting when it shows up; the latest
//! rank forwards the final value to the requested root.
//!
//! With a `NoDelay` pattern the ladder degenerates to a chain, which is why
//! this is *not* a replacement for static selection — it only pays off when
//! the pattern is known and pronounced, which the included example and
//! tests demonstrate.

use pap_sim::data::Value;
use pap_sim::Op;

use crate::spec::{BuildError, Built, CollSpec};
use crate::topo;

/// Maximum size of the leaf binomial groups of the ladder.
const GROUP: usize = 8;

/// Build an arrival-aware reduce for `spec` (algorithm ID is ignored) from
/// per-rank expected delays (seconds). `delays.len()` must equal `p`.
pub fn build_arrival_aware_reduce(spec: &CollSpec, p: usize, delays: &[f64]) -> Result<Built, BuildError> {
    if delays.len() != p {
        return Err(BuildError::Invalid(format!(
            "expected {p} delays, got {}",
            delays.len()
        )));
    }
    if spec.root >= p {
        return Err(BuildError::Invalid(format!("root {} out of range", spec.root)));
    }
    let bytes = spec.bytes;

    // Ranks ordered by expected arrival (stable for ties).
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &b| delays[a].partial_cmp(&delays[b]).expect("finite delays").then(a.cmp(&b)));

    // Ladder levels: consecutive GROUP-sized slices of the arrival order.
    // Within a group, a binomial tree rooted at the group's *latest* rank;
    // group roots form a chain in arrival order.
    let groups: Vec<&[usize]> = order.chunks(GROUP).collect();

    let mut ops_of: Vec<Vec<Op>> = (0..p)
        .map(|me| vec![Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, 1) }])
        .collect();

    let mut prev_group_root: Option<usize> = None;
    for (gi, group) in groups.iter().enumerate() {
        // Binomial tree over the group, re-rooted at its last (latest)
        // member: index the group in arrival order and treat position
        // `len-1` as vrank 0.
        let len = group.len();
        let group_root = group[len - 1];
        let tag = spec.tag_base + gi as u64 * 64;
        for (pos, &rank) in group.iter().enumerate() {
            // vrank 0 = latest member; earlier members get higher vranks so
            // they sit deeper (they arrive earlier and can pre-aggregate).
            let v = len - 1 - pos;
            let node = topo::binomial(v, len);
            for &cv in &node.children {
                let child = group[len - 1 - cv];
                ops_of[rank].push(Op::recv(child, tag + cv as u64, 1));
                ops_of[rank].push(Op::ReduceLocal { from: 1, into: 0, bytes });
            }
            if let Some(pv) = node.parent {
                let parent = group[len - 1 - pv];
                ops_of[rank].push(Op::send(parent, tag + v as u64, bytes, 0));
            }
        }
        // Chain the previous ladder level into this group's root: the
        // aggregated partial of all earlier arrivals is waiting for it.
        if let Some(prev) = prev_group_root {
            let tag = spec.tag_base + 0x8000 + gi as u64;
            ops_of[prev].push(Op::send(group_root, tag, bytes, 0));
            ops_of[group_root].push(Op::recv(prev, tag, 1));
            ops_of[group_root].push(Op::ReduceLocal { from: 1, into: 0, bytes });
        }
        prev_group_root = Some(group_root);
    }

    // Deliver to the requested root.
    let last = prev_group_root.expect("at least one group");
    if last != spec.root {
        let tag = spec.tag_base + 0xFFFF;
        ops_of[last].push(Op::send(spec.root, tag, bytes, 0));
        ops_of[spec.root].push(Op::recv(last, tag, 1));
        ops_of[spec.root].push(Op::CopySlot { from: 1, into: 0 });
    }

    Ok(Built { rank_ops: ops_of, nseg: 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;
    use crate::verify::verify;
    use pap_sim::{run, Job, Platform, RankProgram, SimConfig};

    fn spec() -> CollSpec {
        // Algorithm id only matters for verification grid recomputation;
        // binomial (5) shares the adaptive ladder's single-segment grid.
        CollSpec::new(CollectiveKind::Reduce, 5, 1024)
    }

    fn run_with(delays: &[f64], p: usize) -> pap_sim::RunOutcome {
        let built = build_arrival_aware_reduce(&spec(), p, delays).unwrap();
        let programs = built
            .rank_ops
            .into_iter()
            .enumerate()
            .map(|(r, ops)| {
                let mut prog = RankProgram::new();
                prog.push_anon(vec![Op::delay(delays[r])]);
                prog.push_anon(ops);
                prog
            })
            .collect();
        run(&Platform::simcluster(p), Job::new(programs), &SimConfig::tracking()).unwrap()
    }

    #[test]
    fn correct_for_various_p_and_patterns() {
        for p in [1usize, 2, 3, 7, 8, 9, 16, 33] {
            for pat in [
                vec![0.0; p],
                (0..p).map(|r| r as f64 * 1e-5).collect::<Vec<_>>(),
                (0..p).map(|r| ((r * 7919) % 13) as f64 * 1e-5).collect::<Vec<_>>(),
            ] {
                let out = run_with(&pat, p);
                verify(&spec(), p, &out).unwrap_or_else(|e| panic!("p={p}: {e}"));
            }
        }
    }

    #[test]
    fn rejects_mismatched_delays() {
        assert!(build_arrival_aware_reduce(&spec(), 8, &[0.0; 4]).is_err());
    }

    #[test]
    fn beats_binomial_under_strong_known_pattern() {
        use crate::build;
        // Strong ascending pattern: the ladder should shine vs the static
        // binomial tree on the d̂ metric.
        let p = 64;
        let platform = Platform::simcluster(p);
        let skew = 2e-3;
        let delays: Vec<f64> = (0..p).map(|r| skew * r as f64 / (p - 1) as f64).collect();

        let d_hat = |built: Built| {
            let programs = built
                .rank_ops
                .into_iter()
                .enumerate()
                .map(|(r, ops)| {
                    let mut prog = RankProgram::new();
                    prog.push_anon(vec![Op::delay(delays[r])]);
                    prog.push_labeled(pap_sim::Label { kind: 1, seq: 0 }, ops);
                    prog
                })
                .collect();
            let out = run(&platform, Job::new(programs), &SimConfig::default()).unwrap();
            let recs = out.phases_for(pap_sim::Label { kind: 1, seq: 0 });
            let max_a = recs.iter().map(|r| r.enter).fold(f64::NEG_INFINITY, f64::max);
            let max_e = recs.iter().map(|r| r.exit).fold(f64::NEG_INFINITY, f64::max);
            max_e - max_a
        };

        let adaptive = d_hat(build_arrival_aware_reduce(&spec(), p, &delays).unwrap());
        let binomial = d_hat(build(&CollSpec::new(CollectiveKind::Reduce, 5, 1024), p).unwrap());
        assert!(
            adaptive < binomial,
            "adaptive ladder ({adaptive:.2e}) should beat static binomial ({binomial:.2e}) under a known ascending pattern"
        );
    }
}
