//! Dataflow verification: after running a built collective with
//! `track_data`, assert that the algorithm actually implemented its
//! collective's semantics.

use pap_sim::{RunOutcome, Value};

use crate::registry::CollectiveKind;
use crate::spec::CollSpec;


/// Verify the final slot contents of `outcome` against the semantics of
/// `spec` for `p` ranks.
///
/// * `Reduce`: the root's slot 0 holds every segment of the verification
///   grid, each containing all `p` contributions exactly once.
/// * `Allreduce`: as `Reduce`, on every rank.
/// * `Alltoall`: rank `j`'s slot 0 holds exactly the blocks
///   `{(i, j) : 0 <= i < p}`, each from its origin.
/// * `Bcast`: every rank's slot 0 holds exactly the root's `nseg` blocks.
/// * `Barrier`: nothing to verify beyond `data_errors` being empty.
///
/// Requires the run to have been executed with `SimConfig::track_data`.
pub fn verify(spec: &CollSpec, p: usize, outcome: &RunOutcome) -> Result<(), String> {
    if !outcome.data_errors.is_empty() {
        return Err(format!(
            "{} dataflow violation(s), first: {}",
            outcome.data_errors.len(),
            outcome.data_errors[0]
        ));
    }
    let slots = outcome
        .slots
        .as_ref()
        .ok_or_else(|| "run was not executed with track_data".to_string())?;
    if slots.len() != p {
        return Err(format!("outcome has {} ranks, expected {p}", slots.len()));
    }
    let nseg = crate::build(spec, p).map_err(|e| e.to_string())?.nseg;
    match spec.kind {
        CollectiveKind::Reduce => check_reduction(&slots[spec.root][0], spec.root, p, nseg),
        CollectiveKind::Allreduce => {
            for (r, s) in slots.iter().enumerate() {
                check_reduction(&s[0], r, p, nseg)?;
            }
            Ok(())
        }
        CollectiveKind::Alltoall => {
            for (j, s) in slots.iter().enumerate() {
                check_alltoall_rank(&s[0], j, p)?;
            }
            Ok(())
        }
        CollectiveKind::Bcast => {
            for (r, s) in slots.iter().enumerate() {
                check_bcast_rank(&s[0], r, spec.root, nseg)?;
            }
            Ok(())
        }
        CollectiveKind::Barrier => Ok(()),
        CollectiveKind::Allgather => {
            for (r, s) in slots.iter().enumerate() {
                check_block_collection(&s[0], r, p)?;
            }
            Ok(())
        }
        CollectiveKind::Gather => check_block_collection(&slots[spec.root][0], spec.root, p),
        CollectiveKind::Scatter => {
            for (j, s) in slots.iter().enumerate() {
                check_scatter_rank(&s[0], j, spec.root, p)?;
            }
            Ok(())
        }
    }
}

/// Allgather/Gather result: exactly the blocks `(i, i)` for all `i`, each
/// from its origin.
fn check_block_collection(v: &Value, rank: usize, p: usize) -> Result<(), String> {
    if v.len() != p {
        return Err(format!("rank {rank}: holds {} blocks, expected {p}", v.len()));
    }
    for i in 0..p {
        match v.get((i as u32, i as u32)) {
            None => return Err(format!("rank {rank}: block of origin {i} missing")),
            Some(set) => {
                if set.len() != 1 || !set.contains(i) {
                    return Err(format!("rank {rank}: block of origin {i} has wrong provenance"));
                }
            }
        }
    }
    Ok(())
}

/// Scatter result at rank `j`: exactly the root's block `j`.
fn check_scatter_rank(v: &Value, j: usize, root: usize, p: usize) -> Result<(), String> {
    let _ = p;
    if v.len() != 1 {
        return Err(format!("rank {j}: holds {} blocks, expected exactly 1", v.len()));
    }
    match v.get((root as u32, j as u32)) {
        None => Err(format!("rank {j}: scatter block missing")),
        Some(set) if set.len() == 1 && set.contains(root) => Ok(()),
        Some(_) => Err(format!("rank {j}: scatter block has wrong provenance")),
    }
}

fn check_reduction(v: &Value, rank: usize, p: usize, nseg: u32) -> Result<(), String> {
    for s in 0..nseg {
        match v.get((0, s)) {
            None => return Err(format!("rank {rank}: segment {s} missing from result")),
            Some(set) if !set.is_full(p) => {
                return Err(format!(
                    "rank {rank}: segment {s} has {} of {p} contributions",
                    set.len()
                ))
            }
            _ => {}
        }
    }
    // No stray blocks beyond the verification grid.
    for (coord, _) in v.iter() {
        if coord.0 != 0 || coord.1 >= nseg {
            return Err(format!("rank {rank}: unexpected block {coord:?} in result"));
        }
    }
    Ok(())
}

fn check_alltoall_rank(v: &Value, j: usize, p: usize) -> Result<(), String> {
    if v.len() != p {
        return Err(format!(
            "rank {j}: result holds {} blocks, expected {p}",
            v.len()
        ));
    }
    for i in 0..p {
        match v.get((i as u32, j as u32)) {
            None => return Err(format!("rank {j}: block from origin {i} missing")),
            Some(set) => {
                if set.len() != 1 || !set.contains(i) {
                    return Err(format!("rank {j}: block from {i} has wrong provenance"));
                }
            }
        }
    }
    Ok(())
}

fn check_bcast_rank(v: &Value, rank: usize, root: usize, nseg: u32) -> Result<(), String> {
    if v.len() != nseg as usize {
        return Err(format!("rank {rank}: holds {} blocks, expected {nseg}", v.len()));
    }
    for s in 0..nseg {
        match v.get((root as u32, s)) {
            None => return Err(format!("rank {rank}: segment {s} missing")),
            Some(set) => {
                if set.len() != 1 || !set.contains(root) {
                    return Err(format!("rank {rank}: segment {s} has wrong provenance"));
                }
            }
        }
    }
    Ok(())
}

/// Convenience: number of verification segments a spec produces (recomputes
/// the build).
pub fn nseg_of(spec: &CollSpec, p: usize) -> Result<u32, String> {
    Ok(crate::build(spec, p).map_err(|e| e.to_string())?.nseg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{algorithms, CollectiveKind};
    use pap_sim::{run, Job, Platform, RankProgram, SimConfig};

    fn run_and_verify(spec: &CollSpec, p: usize) -> Result<(), String> {
        let built = crate::build(spec, p).map_err(|e| e.to_string())?;
        let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
        let platform = Platform::simcluster(p);
        let out = run(&platform, Job::new(programs), &SimConfig::tracking()).map_err(|e| e.to_string())?;
        verify(spec, p, &out)
    }

    /// Every algorithm of every collective, across power-of-two and awkward
    /// process counts and across message-size regimes (eager, rendezvous,
    /// segmented). This is the core correctness gate of the crate.
    #[test]
    fn exhaustive_correctness_sweep() {
        let sizes = [1u64, 64, 8 * 1024, 64 * 1024];
        let counts = [1usize, 2, 3, 4, 5, 7, 8, 12, 16, 17];
        for kind in [
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Alltoall,
            CollectiveKind::Bcast,
            CollectiveKind::Barrier,
            CollectiveKind::Allgather,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
        ] {
            for alg in algorithms(kind) {
                for &p in &counts {
                    for &bytes in &sizes {
                        let spec = CollSpec::new(kind, alg.id, bytes);
                        run_and_verify(&spec, p).unwrap_or_else(|e| {
                            panic!("{kind} alg {} ({}) p={p} bytes={bytes}: {e}", alg.id, alg.name)
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn rooted_collectives_verify_at_nonzero_roots() {
        for p in [4usize, 7, 9] {
            for root in [1, p - 1] {
                for alg in algorithms(CollectiveKind::Reduce) {
                    let spec = CollSpec::new(CollectiveKind::Reduce, alg.id, 2048).with_root(root);
                    run_and_verify(&spec, p)
                        .unwrap_or_else(|e| panic!("reduce alg {} root {root} p {p}: {e}", alg.id));
                }
                for alg in algorithms(CollectiveKind::Bcast) {
                    let spec = CollSpec::new(CollectiveKind::Bcast, alg.id, 2048).with_root(root);
                    run_and_verify(&spec, p)
                        .unwrap_or_else(|e| panic!("bcast alg {} root {root} p {p}: {e}", alg.id));
                }
                for kind in [CollectiveKind::Gather, CollectiveKind::Scatter] {
                    for alg in algorithms(kind) {
                        let spec = CollSpec::new(kind, alg.id, 2048).with_root(root);
                        run_and_verify(&spec, p)
                            .unwrap_or_else(|e| panic!("{kind} alg {} root {root} p {p}: {e}", alg.id));
                    }
                }
            }
        }
    }

    #[test]
    fn verify_rejects_untracked_runs() {
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 64);
        let built = crate::build(&spec, 4).unwrap();
        let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
        let out = run(&Platform::simcluster(4), Job::new(programs), &SimConfig::default()).unwrap();
        assert!(verify(&spec, 4, &out).is_err());
    }

    #[test]
    fn verify_detects_wrong_results() {
        // Run a bcast but verify as if it were a reduce: must fail.
        let bc = CollSpec::new(CollectiveKind::Bcast, 5, 64);
        let built = crate::build(&bc, 4).unwrap();
        let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
        let out = run(&Platform::simcluster(4), Job::new(programs), &SimConfig::tracking()).unwrap();
        let red = CollSpec::new(CollectiveKind::Reduce, 5, 64);
        assert!(verify(&red, 4, &out).is_err());
    }

    #[test]
    fn verification_grid_sizes() {
        let p = 8;
        assert_eq!(nseg_of(&CollSpec::new(CollectiveKind::Alltoall, 3, 64), p).unwrap(), 8);
        assert_eq!(nseg_of(&CollSpec::new(CollectiveKind::Reduce, 5, 64), p).unwrap(), 1);
        assert_eq!(nseg_of(&CollSpec::new(CollectiveKind::Allreduce, 4, 64), p).unwrap(), 8);
    }
}
