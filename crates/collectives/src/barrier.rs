//! `MPI_Barrier`: dissemination barrier (used by the harness's harmonized
//! starts and by "linear with sync"-style pacing).

use pap_sim::{Op, Value};

use crate::spec::{BuildError, Built, CollSpec};

/// Build the barrier schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(dissemination(spec, p)),
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// Dissemination barrier: `ceil(log2 p)` rounds; in round `k` rank `i`
/// signals `(i + 2^k) mod p` and waits for a signal from `(i - 2^k) mod p`.
fn dissemination(spec: &CollSpec, p: usize) -> Built {
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = Vec::new();
        if p > 1 {
            // Signal payload: the 1-byte tokens are sent from slot 0, which
            // must hold a defined (empty) value rather than read an
            // uninitialized slot (pap-lint: UseBeforeInit).
            ops.push(Op::InitSlot { slot: 0, value: Value::empty() });
        }
        let mut k = 0u32;
        while (1usize << k) < p {
            let d = 1usize << k;
            let to = (me + d) % p;
            let from = (me + p - d) % p;
            let tag = spec.tag_base + k as u64;
            ops.push(Op::isend(to, tag, 1, 0, 0));
            ops.push(Op::irecv(from, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            k += 1;
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;
    use pap_sim::{run, Job, Platform, RankProgram, SimConfig};

    #[test]
    fn round_counts() {
        let spec = CollSpec::new(CollectiveKind::Barrier, 1, 0);
        for (p, rounds) in [(1usize, 0usize), (2, 1), (3, 2), (8, 3), (9, 4)] {
            let b = build(&spec, p).unwrap();
            let sends = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
            assert_eq!(sends, rounds, "p={p}");
        }
    }

    #[test]
    fn barrier_synchronizes_skewed_ranks() {
        // A rank arriving late must hold every other rank past its arrival.
        let p = 8;
        let spec = CollSpec::new(CollectiveKind::Barrier, 1, 0);
        let b = build(&spec, p).unwrap();
        let mut programs: Vec<RankProgram> = Vec::new();
        for (r, ops) in b.rank_ops.into_iter().enumerate() {
            let mut prog = RankProgram::new();
            let delay = if r == 3 { 1.0 } else { 0.0 };
            prog.push_anon(vec![Op::delay(delay)]);
            prog.push_anon(ops);
            programs.push(prog);
        }
        let out = run(&Platform::simcluster(p), Job::new(programs), &SimConfig::default()).unwrap();
        for r in 0..p {
            assert!(out.finish[r] >= 1.0, "rank {r} left the barrier at {} before the late rank", out.finish[r]);
        }
    }
}
