//! `MPI_Scatter` algorithms: the root distributes block `j` (of
//! `spec.bytes` bytes) to rank `j`.
//!
//! Block convention: the root owns blocks `(root, j)` for all `j`; rank `j`
//! ends with exactly `(root, j)`.
//!
//! Slot convention: slot 0 = result (own block), slot 1 = staging buffer
//! (subtree windows in transit).

use pap_sim::data::{BlockFilter, Value};
use pap_sim::Op;

use crate::gather::subtree_size;
use crate::spec::{BuildError, Built, CollSpec};
use crate::topo;

/// Build the scatter schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(linear(spec, p)),
        2 => Ok(binomial(spec, p)),
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// ID 1: the root sends each rank its block directly.
fn linear(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = Vec::new();
        if me == spec.root {
            ops.push(Op::InitSlot { slot: 1, value: Value::movement_blocks(spec.root, 0, p as u32) });
            // Own block.
            ops.push(Op::InitSlot { slot: 0, value: Value::movement_block(spec.root, spec.root as u32) });
            for i in 0..p {
                if i == spec.root {
                    continue;
                }
                ops.push(Op::send_part(
                    i,
                    spec.tag_base,
                    m,
                    1,
                    BlockFilter::SegRange(i as u32, i as u32 + 1),
                ));
            }
        } else {
            ops.push(Op::recv(spec.root, spec.tag_base, 0));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 2: binomial-tree scatter — each internal node receives its subtree's
/// window of blocks and splits it among its children (one message per tree
/// edge).
fn binomial(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let v = topo::vrank(me, spec.root, p);
        let node = topo::binomial(v, p);
        let mut ops = Vec::new();
        if me == spec.root {
            ops.push(Op::InitSlot { slot: 1, value: Value::movement_blocks(spec.root, 0, p as u32) });
        } else {
            // Receive my subtree's window into the staging slot.
            let parent = topo::actual(node.parent.expect("non-root has parent"), spec.root, p);
            ops.push(Op::recv(parent, spec.tag_base + v as u64, 1));
        }
        // Forward each child its subtree window (largest subtree first, as
        // Open MPI does, so deep subtrees start early).
        for &cv in node.children.iter().rev() {
            let child = topo::actual(cv, spec.root, p);
            let size = subtree_size(cv, p);
            // Window [cv, cv+size) in vrank space = offsets relative to the
            // root in actual-rank space.
            ops.push(Op::send_part(
                child,
                spec.tag_base + cv as u64,
                size as u64 * m,
                1,
                BlockFilter::OffsetRange {
                    on_origin: false,
                    base: topo::actual(cv, spec.root, p) as u32,
                    lo: 0,
                    hi: size as u32,
                    modulo: p as u32,
                },
            ));
        }
        // Keep only my own block in the result slot.
        ops.push(Op::MergeMove { from: 1, into: 0 });
        if p > 1 {
            ops.push(Op::DropBlocks {
                slot: 0,
                filter: BlockFilter::OffsetRange {
                    on_origin: false,
                    base: me as u32,
                    lo: 1,
                    hi: p as u32,
                    modulo: p as u32,
                },
            });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;

    fn spec(alg: u8) -> CollSpec {
        CollSpec::new(CollectiveKind::Scatter, alg, 256)
    }

    #[test]
    fn linear_root_sends_p_minus_1() {
        let b = build(&spec(1), 6).unwrap();
        let sends = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Send { .. })).count();
        assert_eq!(sends, 5);
        let recvs = b.rank_ops[2].iter().filter(|o| matches!(o, Op::Recv { .. })).count();
        assert_eq!(recvs, 1);
    }

    #[test]
    fn binomial_sends_window_bytes() {
        let b = build(&spec(2), 8).unwrap();
        // Root's largest edge carries 4 blocks (to vrank 4).
        let bytes: Vec<u64> = b.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(bytes, vec![4 * 256, 2 * 256, 256]);
    }

    #[test]
    fn both_ids_build_all_p() {
        for alg in [1, 2] {
            for p in [1usize, 2, 3, 5, 8, 13] {
                let b = build(&spec(alg), p).unwrap();
                assert_eq!(b.rank_ops.len(), p);
            }
        }
    }
}
