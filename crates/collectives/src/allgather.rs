//! `MPI_Allgather` algorithms: every rank contributes one `spec.bytes`
//! block and ends with all `p` blocks.
//!
//! The paper's related work (Qian & Afsahi; Proficz) studies exactly this
//! collective's sensitivity to process arrival patterns, so the family is a
//! first-class citizen here even though the paper's own experiments focus
//! on Reduce/Allreduce/Alltoall.
//!
//! Block convention: rank `i` contributes block `(i, i)`.
//! Slot convention: slot 0 = result (grows as blocks arrive), slot 1 =
//! receive temp.

use pap_sim::data::{BlockFilter, Value};
use pap_sim::Op;

use crate::registry::CollectiveKind;
use crate::spec::{BuildError, Built, CollSpec};

/// Build the allgather schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(gather_then_bcast(spec, p)),
        2 => Ok(bruck(spec, p)),
        3 => {
            if p.is_power_of_two() {
                Ok(recursive_doubling(spec, p))
            } else {
                // Open MPI falls back for non-power-of-two communicators;
                // Bruck handles any p with the same log structure.
                Ok(bruck(spec, p))
            }
        }
        4 => Ok(ring(spec, p)),
        5 => {
            if p.is_multiple_of(2) {
                Ok(neighbor_exchange(spec, p))
            } else {
                // Neighbor exchange requires an even process count
                // (Open MPI falls back to ring for odd p).
                Ok(ring(spec, p))
            }
        }
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// ID 1: binomial gather to rank `root` followed by a binomial broadcast of
/// the assembled buffer (Open MPI `basic`). The bcast runs in propagate
/// mode on the per-block grid, so block `j` travels as segment `j`.
fn gather_then_bcast(spec: &CollSpec, p: usize) -> Built {
    let g_spec = CollSpec { kind: CollectiveKind::Gather, alg: 2, ..spec.clone() };
    let g = crate::gather::build(&g_spec, p).expect("gather substrate");
    // Propagate mode needs exactly p segments (block j travels as segment
    // j), so the per-block size is clamped to ≥ 1 byte: with `bytes == 0`
    // the plan would otherwise collapse to a single segment and only block
    // 0 would ever leave the root.
    let block = spec.bytes.max(1);
    let bc_spec = CollSpec {
        kind: CollectiveKind::Bcast,
        alg: 5,
        bytes: block * p as u64,
        seg_bytes: block,
        tag_base: spec.tag_base + 0x40000,
        ..spec.clone()
    };
    let bc = crate::bcast::build_propagate(&bc_spec, p);
    let rank_ops = g
        .rank_ops
        .into_iter()
        .zip(bc.rank_ops)
        .map(|(mut a, b)| {
            a.extend(b);
            a
        })
        .collect();
    Built { rank_ops, nseg: p as u32 }
}

/// ID 2: Bruck allgather — `ceil(log2 p)` rounds; in round `k` rank `i`
/// sends its lowest `min(2^k, p − 2^k)` blocks (origins `i, i+1, …`) to
/// `(i − 2^k) mod p` and receives the next window from `(i + 2^k) mod p`.
/// Works for any `p`.
fn bruck(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) }];
        let mut k = 0u32;
        while (1usize << k) < p {
            let d = 1usize << k;
            let send_cnt = d.min(p - d);
            let dst = (me + p - d) % p;
            let src = (me + d) % p;
            let tag = spec.tag_base + k as u64;
            ops.push(Op::isend_part(
                dst,
                tag,
                send_cnt as u64 * m,
                0,
                BlockFilter::OffsetRange {
                    on_origin: true,
                    base: me as u32,
                    lo: 0,
                    hi: send_cnt as u32,
                    modulo: p as u32,
                },
                0,
            ));
            ops.push(Op::irecv(src, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::MergeMove { from: 1, into: 0 });
            k += 1;
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 3: recursive doubling (power-of-two `p`): in round `k`, partners at
/// distance `2^k` swap everything they hold, doubling the window.
fn recursive_doubling(spec: &CollSpec, p: usize) -> Built {
    debug_assert!(p.is_power_of_two());
    let m = spec.bytes;
    let steps = p.trailing_zeros() as usize;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) }];
        for k in 0..steps {
            let d = 1usize << k;
            let partner = me ^ d;
            let tag = spec.tag_base + k as u64;
            ops.push(Op::isend(partner, tag, d as u64 * m, 0, 0));
            ops.push(Op::irecv(partner, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::MergeMove { from: 1, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 4: ring — `p−1` steps; step `t` forwards the block received in step
/// `t−1` (starting with one's own) to the right neighbor.
fn ring(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) }];
        for t in 0..p.saturating_sub(1) {
            let send_origin = (me + p - t) % p;
            let tag = spec.tag_base + t as u64;
            ops.push(Op::isend_part(
                right,
                tag,
                m,
                0,
                BlockFilter::SegRange(send_origin as u32, send_origin as u32 + 1),
                0,
            ));
            ops.push(Op::irecv(left, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::MergeMove { from: 1, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 5: neighbor exchange (even `p`): pairs swap their own blocks, then
/// alternate exchanging the *two most recently received* blocks with the
/// left/right neighbor — `p/2` steps, two blocks per message after the
/// first.
///
/// The per-step origin windows are derived from a reference simulation of
/// the block sets (cheap, exact), which keeps the schedule honest for every
/// even `p`.
fn neighbor_exchange(spec: &CollSpec, p: usize) -> Built {
    debug_assert!(p.is_multiple_of(2) && p >= 2);
    let m = spec.bytes;
    // Reference simulation: per rank, the window (origin, count) sent at
    // each step, as (start, len) in origin space.
    // last[r] = window received in the previous step.
    let mut last: Vec<(usize, usize)> = (0..p).map(|r| (r, 1)).collect();
    // send window at step s, per rank:
    let steps = p / 2;
    let mut send_windows: Vec<Vec<(usize, usize)>> = vec![vec![(0, 0); p]; steps];
    let mut partner_of: Vec<Vec<usize>> = vec![vec![0; p]; steps];
    for s in 0..steps {
        let mut new_last = last.clone();
        for r in 0..p {
            let partner = if s == 0 {
                r ^ 1
            } else if (r % 2 == 0) == (s % 2 == 1) {
                // Even ranks go left on odd steps, right on even steps;
                // odd ranks mirror.
                (r + p - 1) % p
            } else {
                (r + 1) % p
            };
            partner_of[s][r] = partner;
            // Step 0 sends own block; step 1 sends both held blocks;
            // later steps send the previous step's received window.
            let win = if s == 0 {
                (r, 1)
            } else if s == 1 {
                (r.min(r ^ 1), 2)
            } else {
                last[r]
            };
            send_windows[s][r] = win;
            new_last[r] = send_windows[s][partner]; // will be fixed below
        }
        // What each rank receives is what its partner sends this step.
        for r in 0..p {
            let partner = partner_of[s][r];
            new_last[r] = send_windows[s][partner];
        }
        last = new_last;
    }

    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) }];
        for s in 0..steps {
            let partner = partner_of[s][me];
            let (start, len) = send_windows[s][me];
            let tag = spec.tag_base + s as u64;
            ops.push(Op::isend_part(
                partner,
                tag,
                len as u64 * m,
                0,
                BlockFilter::OffsetRange {
                    on_origin: true,
                    base: start as u32,
                    lo: 0,
                    hi: len as u32,
                    modulo: p as u32,
                },
                0,
            ));
            ops.push(Op::irecv(partner, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::MergeMove { from: 1, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(alg: u8) -> CollSpec {
        CollSpec::new(CollectiveKind::Allgather, alg, 256)
    }

    #[test]
    fn all_ids_build_various_p() {
        for alg in 1..=5u8 {
            for p in [1usize, 2, 3, 4, 5, 6, 8, 12, 16] {
                let b = build(&spec(alg), p).unwrap();
                assert_eq!(b.rank_ops.len(), p, "alg {alg} p {p}");
            }
        }
    }

    #[test]
    fn bruck_has_log_rounds() {
        let b = build(&spec(2), 16).unwrap();
        let sends = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(sends, 4);
        // Non-power-of-two: ceil(log2 11) = 4 rounds too.
        let b11 = build(&spec(2), 11).unwrap();
        let sends11 = b11.rank_ops[0].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(sends11, 4);
    }

    #[test]
    fn bruck_last_round_is_partial_for_non_pow2() {
        let m = 256u64;
        let b = build(&spec(2), 11).unwrap();
        let bytes: Vec<u64> = b.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        // Rounds send 1, 2, 4 then 11-8=3 blocks.
        assert_eq!(bytes, vec![m, 2 * m, 4 * m, 3 * m]);
    }

    #[test]
    fn ring_step_count() {
        let b = build(&spec(4), 7).unwrap();
        let sends = b.rank_ops[3].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(sends, 6);
    }

    #[test]
    fn neighbor_exchange_even_message_sizes() {
        let m = 256u64;
        let b = build(&spec(5), 8).unwrap();
        let bytes: Vec<u64> = b.rank_ops[2]
            .iter()
            .filter_map(|o| match o {
                Op::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        // p/2 = 4 steps: 1 block, then 2 blocks each.
        assert_eq!(bytes, vec![m, 2 * m, 2 * m, 2 * m]);
    }

    #[test]
    fn rdb_doubles_message_sizes() {
        let m = 256u64;
        let b = build(&spec(3), 8).unwrap();
        let bytes: Vec<u64> = b.rank_ops[5]
            .iter()
            .filter_map(|o| match o {
                Op::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(bytes, vec![m, 2 * m, 4 * m]);
    }
}
