//! `MPI_Gather` algorithms: each rank contributes one block of `spec.bytes`
//! bytes; the root collects all `p` blocks.
//!
//! Block convention: rank `i` contributes block `(i, i)`, so both range
//! filters and the all-to-all style verification grid apply.
//!
//! Slot convention: slot 0 = accumulation/result, slot 1 = receive temp.

use pap_sim::data::Value;
use pap_sim::Op;

use crate::spec::{BuildError, Built, CollSpec};
use crate::topo;

/// Build the gather schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(linear(spec, p)),
        2 => Ok(binomial(spec, p)),
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// ID 1: everyone sends directly to the root; the root receives in rank
/// order (Open MPI `basic`).
fn linear(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) }];
        if me == spec.root {
            for i in 0..p {
                if i == spec.root {
                    continue;
                }
                ops.push(Op::recv(i, spec.tag_base, 1));
                ops.push(Op::MergeMove { from: 1, into: 0 });
            }
        } else {
            ops.push(Op::send(spec.root, spec.tag_base, m, 0));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 2: binomial-tree gather — internal nodes collect their subtree and
/// forward the aggregate (one message per tree edge, sized by the subtree).
fn binomial(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let v = topo::vrank(me, spec.root, p);
        let node = topo::binomial(v, p);
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) }];
        // Children in *decreasing* distance order: the largest subtree is
        // received first (it was sent last, so this ordering pipelines).
        for &cv in node.children.iter().rev() {
            let child = topo::actual(cv, spec.root, p);
            ops.push(Op::recv(child, spec.tag_base + cv as u64, 1));
            ops.push(Op::MergeMove { from: 1, into: 0 });
        }
        if let Some(pv) = node.parent {
            let parent = topo::actual(pv, spec.root, p);
            let subtree = subtree_size(v, p);
            ops.push(Op::send(parent, spec.tag_base + v as u64, subtree as u64 * m, 0));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// Size of the binomial subtree rooted at vrank `v` in a tree over `p`
/// vranks: `min(2^tz(v), p - v)` (the root's subtree is all of `p`).
pub(crate) fn subtree_size(v: usize, p: usize) -> usize {
    if v == 0 {
        p
    } else {
        (1usize << v.trailing_zeros()).min(p - v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;

    fn spec(alg: u8) -> CollSpec {
        CollSpec::new(CollectiveKind::Gather, alg, 512)
    }

    #[test]
    fn subtree_sizes() {
        // p = 8 binomial tree: subtree(4) = 4, subtree(2) = 2, subtree(1) = 1.
        assert_eq!(subtree_size(0, 8), 8);
        assert_eq!(subtree_size(4, 8), 4);
        assert_eq!(subtree_size(2, 8), 2);
        assert_eq!(subtree_size(6, 8), 2);
        assert_eq!(subtree_size(1, 8), 1);
        // Clamped at the edge: p = 6, subtree(4) covers {4,5} only.
        assert_eq!(subtree_size(4, 6), 2);
    }

    #[test]
    fn linear_root_receives_p_minus_1() {
        let b = build(&spec(1), 6).unwrap();
        let recvs = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Recv { .. })).count();
        assert_eq!(recvs, 5);
        let sends = b.rank_ops[3].iter().filter(|o| matches!(o, Op::Send { .. })).count();
        assert_eq!(sends, 1);
    }

    #[test]
    fn binomial_aggregates_subtree_bytes() {
        let b = build(&spec(2), 8).unwrap();
        // vrank 4 sends 4 blocks worth of bytes to the root.
        let bytes: Vec<u64> = b.rank_ops[4]
            .iter()
            .filter_map(|o| match o {
                Op::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(bytes, vec![4 * 512]);
    }

    #[test]
    fn both_ids_build_all_p() {
        for alg in [1, 2] {
            for p in [1usize, 2, 3, 5, 8, 13] {
                let b = build(&spec(alg), p).unwrap();
                assert_eq!(b.rank_ops.len(), p);
            }
        }
    }
}
