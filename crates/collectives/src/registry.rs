//! Algorithm registry: the ID ↔ name mapping of Table II plus SMPI aliases.

use serde::{Deserialize, Serialize};

/// The collective operations this crate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Rooted reduction (`MPI_Reduce`).
    Reduce,
    /// Global reduction (`MPI_Allreduce`).
    Allreduce,
    /// Complete exchange (`MPI_Alltoall`).
    Alltoall,
    /// One-to-all (`MPI_Bcast`) — substrate for reduce+bcast Allreduce and a
    /// rooted collective in its own right.
    Bcast,
    /// Synchronization only (`MPI_Barrier`).
    Barrier,
    /// All-to-all data collection (`MPI_Allgather`).
    Allgather,
    /// All-to-one collection (`MPI_Gather`).
    Gather,
    /// One-to-all distribution (`MPI_Scatter`).
    Scatter,
}

impl CollectiveKind {
    /// The three collectives the paper's experiments focus on.
    pub const PAPER: [CollectiveKind; 3] =
        [CollectiveKind::Reduce, CollectiveKind::Allreduce, CollectiveKind::Alltoall];

    /// MPI-style name.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Reduce => "MPI_Reduce",
            CollectiveKind::Allreduce => "MPI_Allreduce",
            CollectiveKind::Alltoall => "MPI_Alltoall",
            CollectiveKind::Bcast => "MPI_Bcast",
            CollectiveKind::Barrier => "MPI_Barrier",
            CollectiveKind::Allgather => "MPI_Allgather",
            CollectiveKind::Gather => "MPI_Gather",
            CollectiveKind::Scatter => "MPI_Scatter",
        }
    }

    /// Stable numeric discriminant used as a phase-label kind.
    pub fn label_kind(self) -> u32 {
        match self {
            CollectiveKind::Reduce => 1,
            CollectiveKind::Allreduce => 2,
            CollectiveKind::Alltoall => 3,
            CollectiveKind::Bcast => 4,
            CollectiveKind::Barrier => 5,
            CollectiveKind::Allgather => 6,
            CollectiveKind::Gather => 7,
            CollectiveKind::Scatter => 8,
        }
    }
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CollectiveKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reduce" | "mpi_reduce" => Ok(CollectiveKind::Reduce),
            "allreduce" | "mpi_allreduce" => Ok(CollectiveKind::Allreduce),
            "alltoall" | "mpi_alltoall" => Ok(CollectiveKind::Alltoall),
            "bcast" | "mpi_bcast" => Ok(CollectiveKind::Bcast),
            "barrier" | "mpi_barrier" => Ok(CollectiveKind::Barrier),
            "allgather" | "mpi_allgather" => Ok(CollectiveKind::Allgather),
            "gather" | "mpi_gather" => Ok(CollectiveKind::Gather),
            "scatter" | "mpi_scatter" => Ok(CollectiveKind::Scatter),
            other => Err(format!("unknown collective '{other}'")),
        }
    }
}

/// One registered algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Algorithm {
    /// Which collective this algorithm implements.
    pub kind: CollectiveKind,
    /// Numeric ID following Table II of the paper (Open MPI 4.1.x `tuned`
    /// numbering).
    pub id: u8,
    /// Open MPI name (Table II).
    pub name: &'static str,
    /// Table II abbreviation.
    pub abbrev: &'static str,
    /// Name of the equivalent SimGrid/SMPI selector value, when one appears
    /// in the paper's simulation study (Fig. 4).
    pub smpi_alias: Option<&'static str>,
    /// Whether the paper's real-machine experiments include this ID
    /// (the paper omits two-process-only and consistently-poor algorithms).
    pub in_paper_experiments: bool,
    /// Whether the algorithm segments the vector (uses `seg_bytes`).
    pub segmented: bool,
}

/// Table II + substrates. IDs within a kind are unique and sorted.
pub const ALGORITHMS: &[Algorithm] = &[
    // ---- MPI_Reduce (Table II: 1..7) ----
    Algorithm { kind: CollectiveKind::Reduce, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: Some("flat_tree"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Reduce, id: 2, name: "Chain", abbrev: "Chain", smpi_alias: Some("ompi_chain"), in_paper_experiments: true, segmented: true },
    Algorithm { kind: CollectiveKind::Reduce, id: 3, name: "Pipeline", abbrev: "Pipe", smpi_alias: Some("ompi_pipeline"), in_paper_experiments: true, segmented: true },
    Algorithm { kind: CollectiveKind::Reduce, id: 4, name: "Binary", abbrev: "Bin", smpi_alias: Some("ompi_binary"), in_paper_experiments: true, segmented: true },
    Algorithm { kind: CollectiveKind::Reduce, id: 5, name: "Binomial", abbrev: "Binom", smpi_alias: Some("ompi_binomial"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Reduce, id: 6, name: "In-order Binary", abbrev: "In-Bin", smpi_alias: Some("ompi_in_order_binary"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Reduce, id: 7, name: "Rabenseifner", abbrev: "Raben", smpi_alias: Some("scatter_gather"), in_paper_experiments: true, segmented: false },
    // ---- MPI_Allreduce (Table II: 2..6; ID 1 exists in Open MPI but the
    //      paper omits it from the experiments) ----
    Algorithm { kind: CollectiveKind::Allreduce, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: None, in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Allreduce, id: 2, name: "Non-overlapping", abbrev: "Non-ovlp", smpi_alias: Some("redbcast"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Allreduce, id: 3, name: "Recursive Doubling", abbrev: "Rec-Dbl", smpi_alias: Some("rdb"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Allreduce, id: 4, name: "Ring", abbrev: "Ring", smpi_alias: Some("lr"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Allreduce, id: 5, name: "Segmented Ring", abbrev: "Seg-Ring", smpi_alias: Some("ompi_ring_segmented"), in_paper_experiments: true, segmented: true },
    Algorithm { kind: CollectiveKind::Allreduce, id: 6, name: "Rabenseifner", abbrev: "Raben", smpi_alias: Some("rab_rdb"), in_paper_experiments: true, segmented: false },
    // ---- MPI_Alltoall (Table II: 1..4) ----
    Algorithm { kind: CollectiveKind::Alltoall, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: Some("basic_linear"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Alltoall, id: 2, name: "Pairwise", abbrev: "Pair", smpi_alias: Some("pair"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Alltoall, id: 3, name: "Modified Bruck", abbrev: "M-Bruck", smpi_alias: Some("bruck"), in_paper_experiments: true, segmented: false },
    Algorithm { kind: CollectiveKind::Alltoall, id: 4, name: "Linear with Sync", abbrev: "L-Sync", smpi_alias: None, in_paper_experiments: true, segmented: false },
    // ---- MPI_Bcast (substrate) ----
    Algorithm { kind: CollectiveKind::Bcast, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: Some("flat_tree"), in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Bcast, id: 2, name: "Chain", abbrev: "Chain", smpi_alias: Some("ompi_chain"), in_paper_experiments: false, segmented: true },
    Algorithm { kind: CollectiveKind::Bcast, id: 3, name: "Pipeline", abbrev: "Pipe", smpi_alias: Some("ompi_pipeline"), in_paper_experiments: false, segmented: true },
    Algorithm { kind: CollectiveKind::Bcast, id: 4, name: "Binary", abbrev: "Bin", smpi_alias: None, in_paper_experiments: false, segmented: true },
    Algorithm { kind: CollectiveKind::Bcast, id: 5, name: "Binomial", abbrev: "Binom", smpi_alias: Some("ompi_binomial"), in_paper_experiments: false, segmented: true },
    // ---- MPI_Barrier (substrate) ----
    Algorithm { kind: CollectiveKind::Barrier, id: 1, name: "Dissemination", abbrev: "Diss", smpi_alias: None, in_paper_experiments: false, segmented: false },
    // ---- MPI_Allgather (the paper's related work studies its arrival
    //      sensitivity; Open MPI tuned numbering) ----
    Algorithm { kind: CollectiveKind::Allgather, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: Some("gather_bcast"), in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Allgather, id: 2, name: "Bruck", abbrev: "Bruck", smpi_alias: Some("bruck"), in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Allgather, id: 3, name: "Recursive Doubling", abbrev: "Rec-Dbl", smpi_alias: Some("rdb"), in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Allgather, id: 4, name: "Ring", abbrev: "Ring", smpi_alias: Some("ring"), in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Allgather, id: 5, name: "Neighbor Exchange", abbrev: "Neigh", smpi_alias: Some("NTSLR_NB"), in_paper_experiments: false, segmented: false },
    // ---- MPI_Gather / MPI_Scatter (substrates & rooted collectives) ----
    Algorithm { kind: CollectiveKind::Gather, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: None, in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Gather, id: 2, name: "Binomial", abbrev: "Binom", smpi_alias: Some("ompi_binomial"), in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Scatter, id: 1, name: "Linear", abbrev: "Lin", smpi_alias: None, in_paper_experiments: false, segmented: false },
    Algorithm { kind: CollectiveKind::Scatter, id: 2, name: "Binomial", abbrev: "Binom", smpi_alias: Some("ompi_binomial"), in_paper_experiments: false, segmented: false },
];

/// All algorithms of one collective, sorted by ID.
pub fn algorithms(kind: CollectiveKind) -> Vec<&'static Algorithm> {
    ALGORITHMS.iter().filter(|a| a.kind == kind).collect()
}

/// Look up one algorithm by kind and ID.
pub fn algorithm(kind: CollectiveKind, id: u8) -> Option<&'static Algorithm> {
    ALGORITHMS.iter().find(|a| a.kind == kind && a.id == id)
}

/// Look up an algorithm by its SMPI alias (the names of Fig. 4).
pub fn by_smpi_alias(kind: CollectiveKind, alias: &str) -> Option<&'static Algorithm> {
    ALGORITHMS.iter().find(|a| a.kind == kind && a.smpi_alias == Some(alias))
}

/// The algorithm IDs used in the paper's real-machine experiments for a
/// collective (e.g. Alltoall → 1..4).
pub fn experiment_ids(kind: CollectiveKind) -> Vec<u8> {
    ALGORITHMS.iter().filter(|a| a.kind == kind && a.in_paper_experiments).map(|a| a.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_and_sorted_per_kind() {
        for kind in [
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Alltoall,
            CollectiveKind::Bcast,
            CollectiveKind::Barrier,
            CollectiveKind::Allgather,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
        ] {
            let algs = algorithms(kind);
            assert!(!algs.is_empty());
            for w in algs.windows(2) {
                assert!(w[0].id < w[1].id, "{kind}: ids not strictly increasing");
            }
        }
    }

    #[test]
    fn table_ii_contents() {
        // Spot-check Table II.
        assert_eq!(algorithm(CollectiveKind::Reduce, 5).unwrap().name, "Binomial");
        assert_eq!(algorithm(CollectiveKind::Reduce, 6).unwrap().abbrev, "In-Bin");
        assert_eq!(algorithm(CollectiveKind::Allreduce, 2).unwrap().abbrev, "Non-ovlp");
        assert_eq!(algorithm(CollectiveKind::Alltoall, 3).unwrap().name, "Modified Bruck");
        assert_eq!(algorithm(CollectiveKind::Alltoall, 4).unwrap().abbrev, "L-Sync");
        // Experiment sets match the paper's figures.
        assert_eq!(experiment_ids(CollectiveKind::Alltoall), vec![1, 2, 3, 4]);
        assert_eq!(experiment_ids(CollectiveKind::Reduce), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(experiment_ids(CollectiveKind::Allreduce), vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn smpi_aliases_resolve() {
        assert_eq!(by_smpi_alias(CollectiveKind::Allreduce, "rdb").unwrap().id, 3);
        assert_eq!(by_smpi_alias(CollectiveKind::Allreduce, "lr").unwrap().id, 4);
        assert_eq!(by_smpi_alias(CollectiveKind::Alltoall, "bruck").unwrap().id, 3);
        assert_eq!(by_smpi_alias(CollectiveKind::Reduce, "ompi_in_order_binary").unwrap().id, 6);
        assert!(by_smpi_alias(CollectiveKind::Reduce, "nope").is_none());
    }

    #[test]
    fn kind_parse_and_display() {
        use std::str::FromStr;
        for k in CollectiveKind::PAPER {
            assert_eq!(CollectiveKind::from_str(k.name()).unwrap(), k);
        }
        assert_eq!(CollectiveKind::from_str("alltoall").unwrap(), CollectiveKind::Alltoall);
        assert!(CollectiveKind::from_str("gatherv").is_err());
    }

    #[test]
    fn label_kinds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for a in ALGORITHMS {
            seen.insert(a.kind.label_kind());
        }
        assert_eq!(seen.len(), 8);
    }
}
