//! Communication topologies (trees, chains) and vector partitioning helpers
//! shared by the algorithm builders.

/// Parent/children of one rank within a tree topology.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeNode {
    /// Parent rank (None at the tree root).
    pub parent: Option<usize>,
    /// Child ranks, in the order the algorithm visits them.
    pub children: Vec<usize>,
}

/// Virtual rank of `rank` when the tree is re-rooted at `root`:
/// `(rank - root) mod p`, so the root has vrank 0.
#[inline]
pub fn vrank(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

/// Inverse of [`vrank`].
#[inline]
pub fn actual(v: usize, root: usize, p: usize) -> usize {
    (v + root) % p
}

/// Binomial tree over vranks `0..p` rooted at 0.
///
/// vrank `v`'s parent clears its lowest set bit; its children are
/// `v + 2^k` for `k` from the position of `v`'s lowest set bit (or the top
/// for `v = 0`) downwards, i.e. nearest child first in send order.
pub fn binomial(v: usize, p: usize) -> TreeNode {
    let parent = if v == 0 { None } else { Some(v & (v - 1)) };
    let mut children = Vec::new();
    let low = if v == 0 { usize::BITS } else { v.trailing_zeros() };
    for k in 0..low.min(usize::BITS - 1) {
        let c = v + (1 << k);
        if c < p {
            children.push(c);
        } else {
            break;
        }
    }
    TreeNode { parent, children }
}

/// Complete binary tree over vranks (children `2v+1`, `2v+2`).
pub fn binary(v: usize, p: usize) -> TreeNode {
    let parent = if v == 0 { None } else { Some((v - 1) / 2) };
    let children = [2 * v + 1, 2 * v + 2].into_iter().filter(|&c| c < p).collect();
    TreeNode { parent, children }
}

/// `nchains` parallel chains hanging off vrank 0: vranks `1..p` are split
/// into `nchains` consecutive runs; within a run each element's parent is
/// its predecessor and the run head's parent is 0.
pub fn chain(v: usize, p: usize, nchains: usize) -> TreeNode {
    assert!(nchains >= 1);
    if p == 1 {
        return TreeNode::default();
    }
    let nchains = nchains.min(p - 1);
    let members = p - 1; // vranks 1..p
    let base = members / nchains;
    let extra = members % nchains;
    // Chain c covers `base` members (+1 for the first `extra` chains).
    let chain_start = |c: usize| 1 + c * base + c.min(extra);
    if v == 0 {
        return TreeNode { parent: None, children: (0..nchains).map(chain_start).collect() };
    }
    let idx = v - 1;
    // Which chain does idx fall in?
    let c = {
        let long = (base + 1) * extra; // members covered by the longer chains
        if idx < long {
            idx / (base + 1)
        } else {
            extra + (idx - long) / base.max(1)
        }
    };
    let start = chain_start(c);
    let end = chain_start(c + 1).min(p);
    let parent = if v == start { 0 } else { v - 1 };
    let children = if v + 1 < end { vec![v + 1] } else { Vec::new() };
    TreeNode { parent: Some(parent), children }
}

/// Single chain (pipeline): vrank `v`'s parent is `v-1`, child `v+1`.
pub fn pipeline(v: usize, p: usize) -> TreeNode {
    chain(v, p, 1)
}

/// Flat tree: vrank 0 is the parent of everyone.
pub fn flat(v: usize, p: usize) -> TreeNode {
    if v == 0 {
        TreeNode { parent: None, children: (1..p).collect() }
    } else {
        TreeNode { parent: Some(0), children: Vec::new() }
    }
}

/// "In-order" binary tree over *actual* ranks with the tree root at rank
/// `p-1` (Open MPI reduces along this tree to rank `size-1` and forwards to
/// the root if different). Built by recursive halving: the node of range
/// `[lo, hi)` is `hi-1`; the remaining ranks split into two subranges.
pub fn in_order_binary(rank: usize, p: usize) -> TreeNode {
    fn node_of(_lo: usize, hi: usize) -> usize {
        hi - 1
    }
    fn locate(lo: usize, hi: usize, rank: usize, parent: Option<usize>) -> TreeNode {
        let node = node_of(lo, hi);
        let mut children = Vec::new();
        if hi - lo > 1 {
            let mid = lo + (hi - 1 - lo) / 2;
            if mid > lo {
                children.push(node_of(lo, mid));
            }
            if hi - 1 > mid {
                children.push(node_of(mid, hi - 1));
            }
            if rank != node {
                return if rank < mid {
                    locate(lo, mid, rank, Some(node))
                } else {
                    locate(mid, hi - 1, rank, Some(node))
                };
            }
        }
        TreeNode { parent, children }
    }
    locate(0, p, rank, None)
}

/// Split `total` bytes into `n` contiguous chunks; earlier chunks take the
/// remainder, so sizes differ by at most 1 byte.
pub fn split_chunks(total: u64, n: usize) -> Vec<u64> {
    assert!(n > 0);
    let n64 = n as u64;
    let base = total / n64;
    let extra = (total % n64) as usize;
    (0..n).map(|i| base + u64::from(i < extra)).collect()
}

/// Segment sizes for a vector of `total` bytes with target segment
/// `seg_bytes`: all segments are `seg_bytes` except a shorter tail. At least
/// one segment even for `total == 0`.
pub fn seg_sizes(total: u64, seg_bytes: u64) -> Vec<u64> {
    assert!(seg_bytes > 0);
    if total == 0 {
        return vec![0];
    }
    let full = (total / seg_bytes) as usize;
    let tail = total % seg_bytes;
    let mut v = vec![seg_bytes; full];
    if tail > 0 {
        v.push(tail);
    }
    v
}

/// Number of integers in `[0, p)` whose bit `k` is set — the block count of
/// a Bruck all-to-all round.
pub fn count_bit_set(p: usize, k: u32) -> usize {
    let period = 1usize << (k + 1);
    let half = 1usize << k;
    (p / period) * half + (p % period).saturating_sub(half)
}

/// Largest power of two `<= p`.
pub fn pow2_floor(p: usize) -> usize {
    assert!(p > 0);
    1 << (usize::BITS - 1 - p.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Check that per-rank TreeNode views assemble into one consistent tree
    /// spanning all p ranks.
    fn check_tree(p: usize, node: impl Fn(usize) -> TreeNode) {
        let nodes: Vec<TreeNode> = (0..p).map(&node).collect();
        let mut roots = 0;
        let mut child_of: HashMap<usize, usize> = HashMap::new();
        for (v, n) in nodes.iter().enumerate() {
            match n.parent {
                None => roots += 1,
                Some(par) => {
                    assert!(par < p, "parent {par} out of range");
                    assert!(
                        nodes[par].children.contains(&v),
                        "p={p}: {par} does not list {v} as child; children {:?}",
                        nodes[par].children
                    );
                }
            }
            for &c in &n.children {
                assert!(c < p);
                assert_eq!(nodes[c].parent, Some(v), "p={p}: child {c} of {v} disagrees");
                assert!(child_of.insert(c, v).is_none(), "p={p}: {c} has two parents");
            }
        }
        assert_eq!(roots, 1, "p={p}: expected exactly one root");
        assert_eq!(child_of.len(), p - 1, "p={p}: tree must span all ranks");
    }

    #[test]
    fn binomial_tree_consistent() {
        for p in [1, 2, 3, 4, 5, 7, 8, 16, 33, 100] {
            check_tree(p, |v| binomial(v, p));
        }
        // Known shape at p=8: root children 1,2,4.
        assert_eq!(binomial(0, 8).children, vec![1, 2, 4]);
        assert_eq!(binomial(5, 8).parent, Some(4));
        assert_eq!(binomial(6, 8).children, vec![7]);
    }

    #[test]
    fn binary_tree_consistent() {
        for p in [1, 2, 3, 6, 7, 15, 31, 100] {
            check_tree(p, |v| binary(v, p));
        }
        assert_eq!(binary(0, 7).children, vec![1, 2]);
        assert_eq!(binary(2, 7).children, vec![5, 6]);
    }

    #[test]
    fn chain_trees_consistent() {
        for p in [1, 2, 3, 5, 9, 16, 33] {
            for nchains in [1, 2, 4, 7] {
                check_tree(p, |v| chain(v, p, nchains));
            }
        }
        // Pipeline is a single line.
        let t = pipeline(3, 8);
        assert_eq!(t.parent, Some(2));
        assert_eq!(t.children, vec![4]);
        // 4 chains over p=9: members 1..8 split 2/2/2/2.
        assert_eq!(chain(0, 9, 4).children, vec![1, 3, 5, 7]);
        assert_eq!(chain(2, 9, 4).parent, Some(1));
        assert!(chain(2, 9, 4).children.is_empty());
    }

    #[test]
    fn flat_tree_consistent() {
        for p in [1, 2, 5] {
            check_tree(p, |v| flat(v, p));
        }
        assert_eq!(flat(0, 4).children, vec![1, 2, 3]);
    }

    #[test]
    fn in_order_binary_consistent_and_rooted_at_last() {
        for p in [1, 2, 3, 4, 5, 8, 13, 32, 100] {
            check_tree(p, |v| in_order_binary(v, p));
            assert_eq!(in_order_binary(p - 1, p).parent, None, "p={p}");
        }
        // Depth is O(log p): rank 0 at p=1024 should be shallow.
        let mut depth = 0;
        let mut r = 0usize;
        while let Some(par) = in_order_binary(r, 1024).parent {
            r = par;
            depth += 1;
            assert!(depth < 25);
        }
        assert!(depth <= 11, "depth {depth}");
    }

    #[test]
    fn vrank_round_trips() {
        for p in [1, 5, 8] {
            for root in 0..p {
                for r in 0..p {
                    assert_eq!(actual(vrank(r, root, p), root, p), r);
                }
                assert_eq!(vrank(root, root, p), 0);
            }
        }
    }

    #[test]
    fn chunk_split_conserves_bytes() {
        for (total, n) in [(100u64, 7usize), (5, 8), (0, 3), (1024, 4)] {
            let c = split_chunks(total, n);
            assert_eq!(c.len(), n);
            assert_eq!(c.iter().sum::<u64>(), total);
            let mx = *c.iter().max().unwrap();
            let mn = *c.iter().min().unwrap();
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn seg_sizes_cover_vector() {
        assert_eq!(seg_sizes(100, 30), vec![30, 30, 30, 10]);
        assert_eq!(seg_sizes(60, 30), vec![30, 30]);
        assert_eq!(seg_sizes(10, 30), vec![10]);
        assert_eq!(seg_sizes(0, 30), vec![0]);
    }

    #[test]
    fn bit_count_matches_bruteforce() {
        for p in [1usize, 2, 3, 4, 7, 8, 15, 16, 100, 1024] {
            for k in 0..11 {
                let expect = (0..p).filter(|j| j & (1 << k) != 0).count();
                assert_eq!(count_bit_set(p, k), expect, "p={p} k={k}");
            }
        }
    }

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(2), 2);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(1000), 512);
        assert_eq!(pow2_floor(1024), 1024);
    }

    #[test]
    fn node_of_is_range_top() {
        assert_eq!(node_of_pub(0, 5), 4);
        fn node_of_pub(lo: usize, hi: usize) -> usize {
            let _ = lo;
            hi - 1
        }
    }
}
