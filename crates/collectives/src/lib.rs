//! # pap-collectives — collective algorithms as verified message schedules
//!
//! From-scratch implementations of the collective-communication algorithms
//! that Open MPI's `tuned` module and SimGrid/SMPI provide, expressed as
//! per-rank [`pap_sim::Op`] schedules. The algorithm set and the ID ↔ name
//! mapping reproduce **Table II** of the paper:
//!
//! | Collective | IDs and names |
//! |---|---|
//! | Allreduce | 1 Linear, 2 Non-overlapping, 3 Recursive Doubling, 4 Ring, 5 Segmented Ring, 6 Rabenseifner |
//! | Alltoall  | 1 Linear, 2 Pairwise, 3 Modified Bruck, 4 Linear with Sync |
//! | Reduce    | 1 Linear, 2 Chain, 3 Pipeline, 4 Binary, 5 Binomial, 6 In-order Binary, 7 Rabenseifner |
//!
//! plus Bcast and Barrier as substrates (needed by the reduce+bcast
//! Allreduce variants and by harmonized starts), and SMPI-style aliases for
//! the simulation study of §III (`rdb`, `lr`, `rab_rdb`,
//! `ompi_ring_segmented`, `redbcast`, `bruck`, `basic_linear`, `pair`,
//! `ompi_binomial`, `ompi_in_order_binary`, `scatter_gather`, …).
//!
//! Every schedule moves *abstract payloads* through the simulator, so each
//! algorithm is verified to actually implement its collective ([`verify()`](verify())),
//! not merely to cost like it.
//!
//! ## Example: build and run a binomial reduce
//!
//! ```
//! use pap_collectives::{build, verify, CollSpec, CollectiveKind};
//! use pap_sim::{run, Job, Platform, RankProgram, SimConfig};
//!
//! let p = 8;
//! let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024); // ID 5 = binomial
//! let built = build(&spec, p).unwrap();
//! let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
//! let out = run(&Platform::simcluster(p), Job::new(programs), &SimConfig::tracking()).unwrap();
//! verify(&spec, p, &out).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod gather;
pub mod scatter;
pub mod barrier;
pub mod bcast;
pub mod reduce;
pub mod registry;
pub mod spec;
pub mod topo;
pub mod verify;

pub use adaptive::build_arrival_aware_reduce;
pub use registry::{algorithms, Algorithm, CollectiveKind};
pub use spec::{build, BuildError, Built, CollSpec, DEFAULT_SEG_BYTES, TAG_SPAN};
pub use verify::verify;
