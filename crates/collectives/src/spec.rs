//! Collective invocation specs and the schedule builder entry point.

use pap_sim::program::Tag;
use pap_sim::Op;
use serde::{Deserialize, Serialize};

use crate::registry::{algorithm, CollectiveKind};

/// Default segment size (bytes) for segmented algorithms — Open MPI's
/// common `tuned` default magnitude.
pub const DEFAULT_SEG_BYTES: u64 = 8192;

/// Tag space reserved per collective instance. Two concurrently running
/// collective instances (e.g. micro-benchmark repetitions) must use
/// `tag_base` values at least this far apart.
pub const TAG_SPAN: u64 = 1 << 20;

/// One collective invocation to be scheduled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollSpec {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Algorithm ID (Table II numbering; see [`crate::registry`]).
    pub alg: u8,
    /// Message size in bytes. Convention follows the micro-benchmark
    /// literature: for Reduce/Allreduce/Bcast this is the total vector size;
    /// for Alltoall it is the per-destination block size.
    pub bytes: u64,
    /// Root rank (rooted collectives; ignored otherwise).
    pub root: usize,
    /// Segment size for segmented algorithms.
    pub seg_bytes: u64,
    /// Base tag; the instance uses tags in `[tag_base, tag_base + TAG_SPAN)`.
    pub tag_base: Tag,
}

impl CollSpec {
    /// Spec with root 0, default segmentation, tag base 0.
    pub fn new(kind: CollectiveKind, alg: u8, bytes: u64) -> Self {
        CollSpec { kind, alg, bytes, root: 0, seg_bytes: DEFAULT_SEG_BYTES, tag_base: 0 }
    }

    /// Replace the root.
    pub fn with_root(mut self, root: usize) -> Self {
        self.root = root;
        self
    }

    /// Replace the segment size.
    pub fn with_seg_bytes(mut self, seg_bytes: u64) -> Self {
        self.seg_bytes = seg_bytes;
        self
    }

    /// Replace the tag base.
    pub fn with_tag_base(mut self, tag_base: Tag) -> Self {
        self.tag_base = tag_base;
        self
    }
}

/// A built collective: per-rank operation schedules.
#[derive(Debug, Clone)]
pub struct Built {
    /// `rank_ops[r]` is the schedule of rank `r` (including input
    /// initialization).
    pub rank_ops: Vec<Vec<Op>>,
    /// Number of logical segments/chunks the data coordinates use (the
    /// verification grid).
    pub nseg: u32,
}

/// Why a spec could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No such (kind, id) in the registry.
    UnknownAlgorithm(CollectiveKind, u8),
    /// Parameter out of range (root, process count, …).
    Invalid(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownAlgorithm(k, id) => write!(f, "unknown algorithm {id} for {k}"),
            BuildError::Invalid(s) => write!(f, "invalid collective spec: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Build the per-rank schedules of a collective invocation for `p` ranks.
pub fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    if p == 0 {
        return Err(BuildError::Invalid("p must be positive".into()));
    }
    if spec.root >= p {
        return Err(BuildError::Invalid(format!("root {} out of range for p={p}", spec.root)));
    }
    if spec.seg_bytes == 0 {
        return Err(BuildError::Invalid("seg_bytes must be positive".into()));
    }
    if algorithm(spec.kind, spec.alg).is_none() {
        return Err(BuildError::UnknownAlgorithm(spec.kind, spec.alg));
    }
    match spec.kind {
        CollectiveKind::Reduce => crate::reduce::build(spec, p),
        CollectiveKind::Allreduce => crate::allreduce::build(spec, p),
        CollectiveKind::Alltoall => crate::alltoall::build(spec, p),
        CollectiveKind::Bcast => crate::bcast::build(spec, p),
        CollectiveKind::Barrier => crate::barrier::build(spec, p),
        CollectiveKind::Allgather => crate::allgather::build(spec, p),
        CollectiveKind::Gather => crate::gather::build(spec, p),
        CollectiveKind::Scatter => crate::scatter::build(spec, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_bad_params() {
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 64);
        assert!(matches!(build(&spec, 0), Err(BuildError::Invalid(_))));
        assert!(matches!(
            build(&spec.clone().with_root(8), 8),
            Err(BuildError::Invalid(_))
        ));
        assert!(matches!(
            build(&spec.clone().with_seg_bytes(0), 8),
            Err(BuildError::Invalid(_))
        ));
        let bad = CollSpec::new(CollectiveKind::Reduce, 99, 64);
        assert!(matches!(build(&bad, 8), Err(BuildError::UnknownAlgorithm(..))));
    }

    #[test]
    fn spec_builder_chain() {
        let s = CollSpec::new(CollectiveKind::Bcast, 5, 4096)
            .with_root(3)
            .with_seg_bytes(1024)
            .with_tag_base(TAG_SPAN * 7);
        assert_eq!(s.root, 3);
        assert_eq!(s.seg_bytes, 1024);
        assert_eq!(s.tag_base, TAG_SPAN * 7);
    }
}
