//! `MPI_Allreduce` algorithms (Table II IDs 1–6).
//!
//! * 1 Linear — linear reduce to rank 0 + linear bcast (Open MPI `basic`).
//! * 2 Non-overlapping — tuned reduce + tuned bcast (binomial/binomial);
//!   SMPI's `redbcast`.
//! * 3 Recursive Doubling — full-vector exchange over `log2 p` rounds.
//! * 4 Ring — ring reduce-scatter + ring allgather (SMPI's `lr`).
//! * 5 Segmented Ring — ring reduce-scatter performed in segment phases.
//! * 6 Rabenseifner — recursive-halving reduce-scatter + recursive-doubling
//!   allgather (SMPI's `rab_rdb`).
//!
//! Slot convention: slot 0 = accumulator/result, slot 1 = receive temp.

use pap_sim::data::{BlockFilter, Value};
use pap_sim::Op;

use crate::registry::CollectiveKind;
use crate::spec::{BuildError, Built, CollSpec};
use crate::topo;

/// Build the allreduce schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(reduce_then_bcast(spec, p, 1, 1)),
        2 => Ok(reduce_then_bcast(spec, p, 5, 5)),
        3 => Ok(recursive_doubling(spec, p)),
        4 => Ok(ring(spec, p, 1)),
        5 => {
            let chunk = (spec.bytes / p as u64).max(1);
            let phases = chunk.div_ceil(spec.seg_bytes).max(1) as usize;
            Ok(ring(spec, p, phases))
        }
        6 => Ok(rabenseifner(spec, p)),
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// IDs 1–2: compose a reduce to rank `spec.root` with a bcast from it.
/// The bcast schedule is built in "propagate" mode: it does not re-init
/// slot 0 but distributes whatever the reduce left there.
fn reduce_then_bcast(spec: &CollSpec, p: usize, reduce_alg: u8, bcast_alg: u8) -> Built {
    let red_spec = CollSpec {
        kind: CollectiveKind::Reduce,
        alg: reduce_alg,
        ..spec.clone()
    };
    let red = crate::reduce::build(&red_spec, p).expect("reduce substrate");
    let bc_spec = CollSpec {
        kind: CollectiveKind::Bcast,
        alg: bcast_alg,
        tag_base: spec.tag_base + 0x40000,
        ..spec.clone()
    };
    let bc = crate::bcast::build_propagate(&bc_spec, p);
    let rank_ops = red
        .rank_ops
        .into_iter()
        .zip(bc.rank_ops)
        .map(|(mut r, b)| {
            r.extend(b);
            r
        })
        .collect();
    Built { rank_ops, nseg: red.nseg }
}

/// ID 3: recursive doubling with full-vector exchanges. Non-power-of-two
/// counts fold excess ranks into partners first and ship the result back at
/// the end (MPICH-style).
fn recursive_doubling(spec: &CollSpec, p: usize) -> Built {
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let steps = p2.trailing_zeros() as usize;
    let bytes = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, 1) }];
        if me >= p2 {
            ops.push(Op::send(me - p2, spec.tag_base, bytes, 0));
            ops.push(Op::recv(me - p2, spec.tag_base + 100, 0));
            rank_ops.push(ops);
            continue;
        }
        if me < r {
            ops.push(Op::recv(me + p2, spec.tag_base, 1));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes });
        }
        for t in 0..steps {
            let partner = me ^ (1 << t);
            let tag = spec.tag_base + 1 + t as u64;
            ops.push(Op::isend(partner, tag, bytes, 0, 0));
            ops.push(Op::irecv(partner, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes });
        }
        if me < r {
            ops.push(Op::send(me + p2, spec.tag_base + 100, bytes, 0));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: 1 }
}

/// IDs 4–5: ring reduce-scatter + ring allgather over `p` chunks.
///
/// With `phases > 1` (segmented ring), the reduce-scatter runs `phases`
/// sequential passes over sub-chunks (coordinate `c*phases + phase`), keeping
/// per-message sizes near `seg_bytes`; the allgather then moves whole chunks.
fn ring(spec: &CollSpec, p: usize, phases: usize) -> Built {
    let nseg = p * phases;
    let chunk_bytes = topo::split_chunks(spec.bytes, p);
    // Sub-chunk sizes: chunk c split into `phases` parts.
    let sub: Vec<Vec<u64>> = chunk_bytes.iter().map(|&b| topo::split_chunks(b, phases)).collect();
    let coord = |c: usize, ph: usize| (c * phases + ph) as u32;

    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, nseg as u32) }];
        if p == 1 {
            rank_ops.push(ops);
            continue;
        }
        // Reduce-scatter: after p-1 steps, rank me holds the complete
        // reduction of chunk (me + 1) mod p.
        #[allow(clippy::needless_range_loop)]
        for ph in 0..phases {
            for t in 0..p - 1 {
                let sc = (me + p - t) % p;
                let rc = (me + p - t - 1) % p;
                let tag = spec.tag_base + (ph * p + t) as u64;
                ops.push(Op::isend_part(
                    right,
                    tag,
                    sub[sc][ph],
                    0,
                    BlockFilter::SegRange(coord(sc, ph), coord(sc, ph) + 1),
                    0,
                ));
                ops.push(Op::irecv(left, tag, 1, 1));
                ops.push(Op::waitall(vec![0, 1]));
                ops.push(Op::ReduceLocal { from: 1, into: 0, bytes: sub[rc][ph] });
            }
        }
        // Allgather ring over whole chunks: step t sends chunk
        // (me + 1 - t) mod p and receives chunk (me - t) mod p.
        let ag_base = spec.tag_base + (phases * p) as u64;
        for t in 0..p - 1 {
            let sc = (me + 1 + p - t) % p;
            let rc = (me + p - t) % p;
            let tag = ag_base + t as u64;
            ops.push(Op::isend_part(
                right,
                tag,
                chunk_bytes[sc],
                0,
                BlockFilter::SegRange(coord(sc, 0), coord(sc, phases - 1) + 1),
                0,
            ));
            ops.push(Op::irecv(left, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            let _ = rc;
            ops.push(Op::OverwriteMove { from: 1, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: nseg as u32 }
}

/// ID 6: Rabenseifner — recursive-halving reduce-scatter, then
/// recursive-doubling allgather so every rank ends with the full vector.
fn rabenseifner(spec: &CollSpec, p: usize) -> Built {
    let p2 = topo::pow2_floor(p);
    let r = p - p2;
    let steps = p2.trailing_zeros() as usize;
    let chunks = topo::split_chunks(spec.bytes, p2);
    let mut prefix = vec![0u64; p2 + 1];
    for (i, &c) in chunks.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let range_bytes = |lo: usize, hi: usize| prefix[hi] - prefix[lo];

    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::reduce_input(me, 0, p2 as u32) }];
        if me >= p2 {
            ops.push(Op::send(me - p2, spec.tag_base, spec.bytes, 0));
            ops.push(Op::recv(me - p2, spec.tag_base + 100, 0));
            rank_ops.push(ops);
            continue;
        }
        if me < r {
            ops.push(Op::recv(me + p2, spec.tag_base, 1));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes: spec.bytes });
        }
        // Recursive halving reduce-scatter (as in the Rabenseifner reduce).
        let (mut lo, mut hi) = (0usize, p2);
        for t in 0..steps {
            let d = p2 >> (t + 1);
            let partner = me ^ d;
            let mid = lo + d;
            let (keep, send) = if me & d == 0 { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
            let tag = spec.tag_base + 1 + t as u64;
            ops.push(Op::isend_part(
                partner,
                tag,
                range_bytes(send.0, send.1),
                0,
                BlockFilter::SegRange(send.0 as u32, send.1 as u32),
                0,
            ));
            ops.push(Op::irecv(partner, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::ReduceLocal { from: 1, into: 0, bytes: range_bytes(keep.0, keep.1) });
            lo = keep.0;
            hi = keep.1;
        }
        // Recursive doubling allgather: intervals double each step.
        for t in 0..steps {
            let d = 1 << t;
            let partner = me ^ d;
            let tag = spec.tag_base + 1 + (steps + t) as u64;
            ops.push(Op::isend_part(
                partner,
                tag,
                range_bytes(lo, hi),
                0,
                BlockFilter::SegRange(lo as u32, hi as u32),
                0,
            ));
            ops.push(Op::irecv(partner, tag, 1, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::OverwriteMove { from: 1, into: 0 });
            lo &= !(2 * d - 1);
            hi = lo + 2 * d;
        }
        if me < r {
            ops.push(Op::send(me + p2, spec.tag_base + 100, spec.bytes, 0));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p2 as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(alg: u8, bytes: u64) -> CollSpec {
        CollSpec::new(CollectiveKind::Allreduce, alg, bytes)
    }

    #[test]
    fn all_ids_build() {
        for alg in 1..=6u8 {
            for p in [1usize, 2, 3, 4, 5, 8, 13] {
                let b = build(&spec(alg, 4096), p).unwrap_or_else(|e| panic!("alg {alg} p {p}: {e}"));
                assert_eq!(b.rank_ops.len(), p);
            }
        }
    }

    #[test]
    fn recursive_doubling_round_count() {
        let b = build(&spec(3, 64), 8).unwrap();
        // 3 rounds of isend per rank (p = 8 = 2^3).
        let sends = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(sends, 3);
    }

    #[test]
    fn ring_has_2p_minus_2_steps() {
        let p = 6;
        let b = build(&spec(4, 600), p).unwrap();
        let sends = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(sends, 2 * (p - 1));
        assert_eq!(b.nseg, p as u32);
    }

    #[test]
    fn segmented_ring_multiplies_phases() {
        // 64 KiB over 4 ranks → 16 KiB chunks → 2 phases at 8 KiB segs.
        let b = build(&spec(5, 64 * 1024), 4).unwrap();
        assert_eq!(b.nseg, 8);
        let sends = b.rank_ops[0].iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        // RS: 2 phases × 3 steps; AG: 3 steps.
        assert_eq!(sends, 9);
    }

    #[test]
    fn non_power_of_two_excess_ranks_fold() {
        let b = build(&spec(3, 64), 5).unwrap();
        let ops = &b.rank_ops[4];
        // Excess rank: one send out, one recv back, nothing else.
        assert_eq!(ops.iter().filter(|o| matches!(o, Op::Send { .. })).count(), 1);
        assert_eq!(ops.iter().filter(|o| matches!(o, Op::Recv { .. })).count(), 1);
    }
}
