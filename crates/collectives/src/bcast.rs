//! `MPI_Bcast` algorithms (substrate for reduce+bcast Allreduce variants and
//! a rooted collective in its own right).
//!
//! All algorithms are a (possibly segmented) pipeline along a tree: each
//! rank receives each segment from its parent, merges it into slot 0, and
//! forwards it to its children with non-blocking sends.
//!
//! Slot convention: slot 0 = result, slot 1 = receive temp.

use pap_sim::data::{BlockFilter, Value};
use pap_sim::Op;

use crate::spec::{BuildError, Built, CollSpec};
use crate::topo::{self, TreeNode};

/// Build the bcast schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    let built = match spec.alg {
        1 => tree_bcast(spec, p, false, true, |v| topo::flat(v, p)),
        2 => tree_bcast(spec, p, true, true, |v| topo::chain(v, p, 4)),
        3 => tree_bcast(spec, p, true, true, |v| topo::pipeline(v, p)),
        4 => tree_bcast(spec, p, true, true, |v| topo::binary(v, p)),
        5 => tree_bcast(spec, p, true, true, |v| topo::binomial(v, p)),
        id => return Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    };
    Ok(built)
}

/// Build bcast schedules that *propagate the existing content of slot 0 at
/// the root* instead of initializing movement blocks — used to compose
/// reduce+bcast Allreduce algorithms.
pub(crate) fn build_propagate(spec: &CollSpec, p: usize) -> Built {
    match spec.alg {
        1 => tree_bcast(spec, p, false, false, |v| topo::flat(v, p)),
        2 => tree_bcast(spec, p, true, false, |v| topo::chain(v, p, 4)),
        3 => tree_bcast(spec, p, true, false, |v| topo::pipeline(v, p)),
        4 => tree_bcast(spec, p, true, false, |v| topo::binary(v, p)),
        _ => tree_bcast(spec, p, true, false, |v| topo::binomial(v, p)),
    }
}

fn tree_bcast(
    spec: &CollSpec,
    p: usize,
    segmented: bool,
    init_movement: bool,
    tree_of: impl Fn(usize) -> TreeNode,
) -> Built {
    let segs = if segmented { topo::seg_sizes(spec.bytes, spec.seg_bytes) } else { vec![spec.bytes] };
    let nseg = segs.len();
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let v = topo::vrank(me, spec.root, p);
        let node = tree_of(v);
        let mut ops = Vec::new();
        if me == spec.root && init_movement {
            ops.push(Op::InitSlot { slot: 0, value: Value::movement_blocks(spec.root, 0, nseg as u32) });
        }
        let mut req = 0usize;
        for (s, &seg_bytes) in segs.iter().enumerate() {
            let tag = spec.tag_base + s as u64;
            if let Some(pv) = node.parent {
                let parent = topo::actual(pv, spec.root, p);
                ops.push(Op::recv(parent, tag, 1));
                ops.push(Op::OverwriteMove { from: 1, into: 0 });
            }
            for &cv in &node.children {
                let child = topo::actual(cv, spec.root, p);
                ops.push(Op::isend_part(
                    child,
                    tag,
                    seg_bytes,
                    0,
                    BlockFilter::SegRange(s as u32, s as u32 + 1),
                    req,
                ));
                req += 1;
            }
        }
        if req > 0 {
            ops.push(Op::waitall((0..req).collect()));
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: nseg as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;

    fn spec(alg: u8, bytes: u64) -> CollSpec {
        CollSpec::new(CollectiveKind::Bcast, alg, bytes)
    }

    #[test]
    fn all_ids_build_various_p() {
        for alg in 1..=5u8 {
            for p in [1usize, 2, 3, 7, 8, 16] {
                let b = build(&spec(alg, 4096), p).unwrap();
                assert_eq!(b.rank_ops.len(), p);
            }
        }
    }

    #[test]
    fn root_only_sends_leaves_only_receive() {
        let b = build(&spec(5, 64), 8).unwrap();
        assert!(!b.rank_ops[0].iter().any(|o| matches!(o, Op::Recv { .. })));
        // Rank 7 in a binomial tree of 8 is a leaf.
        let leaf = &b.rank_ops[7];
        assert!(!leaf.iter().any(|o| matches!(o, Op::Isend { .. })));
        assert_eq!(leaf.iter().filter(|o| matches!(o, Op::Recv { .. })).count(), 1);
    }

    #[test]
    fn pipeline_segments_flow() {
        let s = spec(3, 32 * 1024).with_seg_bytes(8192);
        let b = build(&s, 4).unwrap();
        assert_eq!(b.nseg, 4);
        // A middle rank receives 4 segments and forwards 4.
        let mid = &b.rank_ops[1];
        assert_eq!(mid.iter().filter(|o| matches!(o, Op::Recv { .. })).count(), 4);
        assert_eq!(mid.iter().filter(|o| matches!(o, Op::Isend { .. })).count(), 4);
    }

    #[test]
    fn rerooted_tree_shifts_structure() {
        let b = build(&spec(5, 64).with_root(3), 8).unwrap();
        // Root 3 initializes and never receives.
        assert!(matches!(b.rank_ops[3][0], Op::InitSlot { .. }));
        assert!(!b.rank_ops[3].iter().any(|o| matches!(o, Op::Recv { .. })));
        assert!(b.rank_ops[0].iter().any(|o| matches!(o, Op::Recv { .. })));
    }

    #[test]
    fn propagate_mode_does_not_init() {
        let b = build_propagate(&spec(5, 64), 4);
        assert!(!b.rank_ops[0].iter().any(|o| matches!(o, Op::InitSlot { .. })));
    }
}
