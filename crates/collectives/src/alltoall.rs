//! `MPI_Alltoall` algorithms (Table II IDs 1–4).
//!
//! `spec.bytes` is the **per-destination** block size (the convention of the
//! OSU benchmarks and of the paper's figures).
//!
//! Slot convention: slot 0 = result (blocks destined to me; for Bruck also
//! the working buffer), slot 1 = outgoing blocks, slot 2 = receive temp,
//! slots `4..4+p` = per-peer receive buffers (linear variants).

use pap_sim::data::{BlockFilter, Value};
use pap_sim::Op;

use crate::spec::{BuildError, Built, CollSpec};
use crate::topo;

const RECV_BASE: usize = 4;

/// Build the alltoall schedules. Dispatched from [`crate::build`].
pub(crate) fn build(spec: &CollSpec, p: usize) -> Result<Built, BuildError> {
    match spec.alg {
        1 => Ok(linear(spec, p, usize::MAX)),
        2 => Ok(pairwise(spec, p)),
        3 => Ok(bruck(spec, p)),
        4 => Ok(linear(spec, p, 2)),
        id => Err(BuildError::UnknownAlgorithm(spec.kind, id)),
    }
}

/// IDs 1 and 4: linear (all requests outstanding) and linear-with-sync
/// (window of `window` request pairs, synced between batches).
fn linear(spec: &CollSpec, p: usize, window: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![
            Op::InitSlot { slot: 1, value: Value::movement_blocks(me, 0, p as u32) },
            // Local copy of the block destined to myself.
            Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) },
        ];
        // Distance k pairs a receive from (me-k) with a send to (me+k), so
        // every batch's receives are satisfied by the same batch of the
        // peers' sends (no cross-batch wait).
        let dists: Vec<usize> = (1..p).collect();
        for batch in dists.chunks(window.max(1).min(p)) {
            let mut reqs = Vec::with_capacity(batch.len() * 2);
            for (i, &k) in batch.iter().enumerate() {
                let from = (me + p - k) % p;
                let to = (me + k) % p;
                let r_req = 2 * i;
                let s_req = 2 * i + 1;
                ops.push(Op::irecv(from, spec.tag_base, RECV_BASE + from, r_req));
                ops.push(Op::isend_part(
                    to,
                    spec.tag_base,
                    m,
                    1,
                    BlockFilter::SegRange(to as u32, to as u32 + 1),
                    s_req,
                ));
                reqs.push(r_req);
                reqs.push(s_req);
            }
            ops.push(Op::waitall(reqs));
        }
        for k in 1..p {
            ops.push(Op::MergeMove { from: RECV_BASE + (me + p - k) % p, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 2: pairwise exchange — step `t` exchanges with ranks at ring distance
/// `t`, one send and one receive in flight at a time.
fn pairwise(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    for me in 0..p {
        let mut ops = vec![
            Op::InitSlot { slot: 1, value: Value::movement_blocks(me, 0, p as u32) },
            Op::InitSlot { slot: 0, value: Value::movement_block(me, me as u32) },
        ];
        for t in 1..p {
            let sendto = (me + t) % p;
            let recvfrom = (me + p - t) % p;
            let tag = spec.tag_base + t as u64;
            ops.push(Op::isend_part(
                sendto,
                tag,
                m,
                1,
                BlockFilter::SegRange(sendto as u32, sendto as u32 + 1),
                0,
            ));
            ops.push(Op::irecv(recvfrom, tag, 2, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::MergeMove { from: 2, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

/// ID 3: (modified) Bruck — `ceil(log2 p)` rounds; round `k` forwards every
/// held block whose ring position `(dest - origin) mod p` has bit `k` set to
/// the rank at distance `2^k`. Aggregates many blocks per message, which is
/// what makes it the small-message algorithm of choice.
fn bruck(spec: &CollSpec, p: usize) -> Built {
    let m = spec.bytes;
    let mut rank_ops = Vec::with_capacity(p);
    let rounds = (usize::BITS - p.saturating_sub(1).leading_zeros()) as usize; // ceil(log2 p)
    for me in 0..p {
        // Slot 0 holds all blocks currently resident here; starts with my
        // own p outgoing blocks (own block (me, me) included, position 0,
        // never sent).
        let mut ops = vec![Op::InitSlot { slot: 0, value: Value::movement_blocks(me, 0, p as u32) }];
        for k in 0..rounds {
            let d = 1usize << k;
            if d >= p {
                break;
            }
            let dst = (me + d) % p;
            let src = (me + p - d) % p;
            let filter = BlockFilter::OriginOffsetBit { bit: k as u8, modulo: p as u32 };
            let bytes = topo::count_bit_set(p, k as u32) as u64 * m;
            let tag = spec.tag_base + k as u64;
            ops.push(Op::isend_part(dst, tag, bytes, 0, filter, 0));
            // The blocks just sent no longer live here.
            ops.push(Op::DropBlocks { slot: 0, filter });
            ops.push(Op::irecv(src, tag, 2, 1));
            ops.push(Op::waitall(vec![0, 1]));
            ops.push(Op::MergeMove { from: 2, into: 0 });
        }
        rank_ops.push(ops);
    }
    Built { rank_ops, nseg: p as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CollectiveKind;

    fn spec(alg: u8, bytes: u64) -> CollSpec {
        CollSpec::new(CollectiveKind::Alltoall, alg, bytes)
    }

    #[test]
    fn all_ids_build_various_p() {
        for alg in 1..=4u8 {
            for p in [1usize, 2, 3, 5, 8, 16] {
                let b = build(&spec(alg, 512), p).unwrap();
                assert_eq!(b.rank_ops.len(), p, "alg {alg} p {p}");
            }
        }
    }

    #[test]
    fn linear_posts_all_requests_at_once() {
        let p = 8;
        let b = build(&spec(1, 64), p).unwrap();
        // Exactly one WaitAll with 2(p-1) requests.
        let waits: Vec<usize> = b.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::WaitAll { reqs } => Some(reqs.len()),
                _ => None,
            })
            .collect();
        assert_eq!(waits, vec![2 * (p - 1)]);
    }

    #[test]
    fn linear_sync_batches_requests() {
        let p = 8;
        let b = build(&spec(4, 64), p).unwrap();
        let waits: Vec<usize> = b.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::WaitAll { reqs } => Some(reqs.len()),
                _ => None,
            })
            .collect();
        // 7 peers in windows of 2 → batches of 4,4,4,2 requests.
        assert_eq!(waits, vec![4, 4, 4, 2]);
    }

    #[test]
    fn pairwise_steps_and_partners() {
        let p = 5;
        let b = build(&spec(2, 64), p).unwrap();
        let sends: Vec<usize> = b.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::Isend { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bruck_round_count_and_bytes() {
        let p = 8;
        let m = 64u64;
        let b = build(&spec(3, m), p).unwrap();
        let sends: Vec<u64> = b.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        // 3 rounds, each aggregating 4 blocks.
        assert_eq!(sends, vec![4 * m, 4 * m, 4 * m]);
        // Non-power-of-two: p=5 → rounds of 2,2,1... positions with bit set.
        let b5 = build(&spec(3, m), 5).unwrap();
        let sends5: Vec<u64> = b5.rank_ops[0]
            .iter()
            .filter_map(|o| match o {
                Op::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(sends5, vec![2 * m, 2 * m, m]);
    }

    #[test]
    fn bruck_fewer_messages_than_linear() {
        let p = 64;
        let lin = build(&spec(1, 8), p).unwrap();
        let brk = build(&spec(3, 8), p).unwrap();
        let count = |ops: &[Op]| ops.iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        assert_eq!(count(&lin.rank_ops[0]), 63);
        assert_eq!(count(&brk.rank_ops[0]), 6);
    }
}
