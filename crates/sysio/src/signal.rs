//! Process-wide shutdown flag set from SIGTERM/SIGINT.
//!
//! The handler does the only thing that is async-signal-safe to do: store
//! into a static atomic. Accept loops poll [`shutdown_requested`] between
//! waits and run their ordinary drain path, so a `kill -TERM` is
//! indistinguishable from an in-band shutdown request.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// SIGTERM signal number (Linux).
pub const SIGTERM: i32 = 15;
/// SIGINT signal number (Linux).
pub const SIGINT: i32 = 2;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    // glibc's signal() has BSD semantics (no handler reset, SA_RESTART);
    // that is exactly what a flag-setting handler wants.
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

const SIG_ERR: usize = usize::MAX;

/// Install the flag-setting handler for SIGTERM and SIGINT. Idempotent;
/// later installs just re-point the handler at the same flag.
pub fn install_shutdown_flag() -> io::Result<()> {
    let handler: extern "C" fn(i32) = on_signal;
    for sig in [SIGTERM, SIGINT] {
        if unsafe { signal(sig, handler as usize) } == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Whether a shutdown signal has arrived since the last reset.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clear the flag — for tests and for daemons that restart their accept
/// loop after a drain.
pub fn reset_shutdown_flag() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Send `sig` to the current process (test hook for the loopback
/// graceful-shutdown suites).
pub fn raise_signal(sig: i32) -> io::Result<()> {
    if unsafe { raise(sig) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigterm_sets_the_flag() {
        install_shutdown_flag().unwrap();
        reset_shutdown_flag();
        assert!(!shutdown_requested());
        raise_signal(SIGTERM).unwrap();
        assert!(shutdown_requested());
        reset_shutdown_flag();
        assert!(!shutdown_requested());
    }
}
