//! RLIMIT_NOFILE helpers: an event-driven node advertising tens of
//! thousands of connections must check (and, within the hard limit, raise)
//! its file-descriptor budget instead of dying mid-accept.

use std::io;

const RLIMIT_NOFILE: i32 = 7;

#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// The current (soft, hard) file-descriptor limits.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut rl = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((rl.cur, rl.max))
}

/// Raise the soft fd limit toward `want`, clamped to the hard limit.
/// Returns the resulting soft limit; never lowers it.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (cur, max) = nofile_limit()?;
    if want <= cur {
        return Ok(cur);
    }
    let target = want.min(max);
    let rl = RLimit { cur: target, max };
    if unsafe { setrlimit(RLIMIT_NOFILE, &rl) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_are_sane_and_raise_is_monotone() {
        let (cur, max) = nofile_limit().unwrap();
        assert!(cur > 0 && max >= cur);
        let after = raise_nofile_limit(cur).unwrap();
        assert_eq!(after, cur, "raising to the current limit is a no-op");
        let bumped = raise_nofile_limit(cur.saturating_add(1)).unwrap();
        assert!(bumped >= cur);
    }
}
