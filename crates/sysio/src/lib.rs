//! `pap-sysio`: the one crate in the workspace allowed to contain `unsafe`.
//!
//! Every other crate carries `#![forbid(unsafe_code)]`; the event-driven
//! fleet node and the daemons need three narrow pieces of kernel surface
//! that std does not expose — an epoll readiness loop, async-signal-safe
//! shutdown flags, and the file-descriptor rlimit. Rather than vendoring a
//! libc crate, this module declares the handful of libc symbols it needs
//! directly (std already links libc on every supported target) and wraps
//! them in safe, misuse-resistant types. Linux-only, like the daemons'
//! loopback test suite.

#![warn(missing_docs)]
#![cfg(target_os = "linux")]

mod epoll;
mod rlimit;
mod signal;

pub use epoll::{Epoll, Event, Interest};
pub use rlimit::{nofile_limit, raise_nofile_limit};
pub use signal::{
    install_shutdown_flag, raise_signal, reset_shutdown_flag, shutdown_requested, SIGINT, SIGTERM,
};
