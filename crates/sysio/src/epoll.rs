//! A minimal safe wrapper over the Linux epoll API.
//!
//! Level-triggered only: the fleet node re-arms interest explicitly, which
//! keeps the readiness loop obviously correct (a partially drained buffer
//! simply reports ready again on the next wait) at the cost of a few extra
//! wakeups — the right trade for a daemon whose per-event work is a full
//! frame parse and dispatch.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// epoll_event is packed on x86_64 so the layout matches the kernel ABI;
// other architectures use the natural C layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Which readiness classes a registration asks for. Errors and hangups are
/// always reported by the kernel regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Readable and writable — while a write buffer is partially flushed.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness report from [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (or the peer closed its write half).
    pub readable: bool,
    /// The fd accepts writes.
    pub writable: bool,
    /// Error or hangup: the connection should be torn down after a final
    /// drain attempt.
    pub closed: bool,
}

/// An epoll instance owning its file descriptor.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new (close-on-exec) epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event;
        let ptr = ev.as_mut().map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events: interest.mask(), data: token }))
    }

    /// Change the interest set of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events: interest.mask(), data: token }))
    }

    /// Deregister an fd. Safe to call on an fd about to be closed; closing
    /// an fd also removes it from every epoll set it is registered with.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Wait for readiness, appending up to `max` events into `out` (which is
    /// cleared first). `timeout = None` blocks indefinitely. Returns the
    /// number of events delivered; `Ok(0)` on timeout. EINTR is surfaced as
    /// `Ok(0)` so signal arrival falls through to the caller's shutdown
    /// polling.
    pub fn wait(&self, out: &mut Vec<Event>, max: usize, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        let max = max.clamp(1, 4096) as i32;
        let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
        let max = max.min(buf.len() as i32);
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), max, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            // Copy out of the (potentially packed) struct before using.
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: events & EPOLLOUT != 0,
                closed: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out.
        assert_eq!(ep.wait(&mut events, 16, Some(Duration::from_millis(10))).unwrap(), 0);

        tx.write_all(b"ping\n").unwrap();
        let n = ep.wait(&mut events, 16, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 8];
        let got = rx.read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping\n");

        // Write interest on an idle socket reports writable immediately.
        ep.modify(rx.as_raw_fd(), 7, Interest::READ_WRITE).unwrap();
        let n = ep.wait(&mut events, 16, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1 && events[0].writable);

        // Peer close surfaces as readable (EOF) so the loop drains and closes.
        drop(tx);
        let n = ep.wait(&mut events, 16, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1 && events[0].readable);
        ep.delete(rx.as_raw_fd()).unwrap();
    }
}
