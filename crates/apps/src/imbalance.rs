//! Workload-imbalance models: the *source* of application arrival patterns.
//!
//! Real applications arrive at collectives unevenly because compute phases
//! take different times on different ranks — from OS noise (node-level),
//! data-dependent work (rank-level), and transient interference. We model a
//! persistent multiplicative slowdown per rank with a node-structured and a
//! rank-structured component; the engine's noise model adds per-iteration
//! jitter on top.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Persistent compute-imbalance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceModel {
    /// Std-dev of the per-node slowdown component (fraction; e.g. 0.05).
    pub node_sigma: f64,
    /// Std-dev of the per-rank slowdown component.
    pub rank_sigma: f64,
}

impl ImbalanceModel {
    /// No persistent imbalance (arrival skew then comes only from noise).
    pub const NONE: ImbalanceModel = ImbalanceModel { node_sigma: 0.0, rank_sigma: 0.0 };

    /// A production-like default: nodes differ by a few percent, ranks by a
    /// little on top.
    pub const DEFAULT: ImbalanceModel = ImbalanceModel { node_sigma: 0.04, rank_sigma: 0.015 };

    /// Per-rank multiplicative compute factors (≥ 0.5), deterministic in
    /// `seed`. `node_of` maps ranks to nodes so that co-located ranks share
    /// the node component.
    pub fn factors(&self, p: usize, node_of: impl Fn(usize) -> usize, seed: u64) -> Vec<f64> {
        let nodes = (0..p).map(&node_of).max().map_or(1, |m| m + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1B41_AACE);
        let node_f: Vec<f64> = (0..nodes).map(|_| 1.0 + self.node_sigma * gauss(&mut rng)).collect();
        (0..p)
            .map(|r| (node_f[node_of(r)] + self.rank_sigma * gauss(&mut rng)).max(0.5))
            .collect()
    }
}

fn gauss(rng: &mut ChaCha8Rng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let f = ImbalanceModel::NONE.factors(8, |r| r / 4, 1);
        assert!(f.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn node_component_is_shared_within_a_node() {
        let m = ImbalanceModel { node_sigma: 0.1, rank_sigma: 0.0 };
        let f = m.factors(8, |r| r / 4, 2);
        assert_eq!(f[0], f[3]);
        assert_ne!(f[0], f[4]);
    }

    #[test]
    fn deterministic_and_positive() {
        let m = ImbalanceModel::DEFAULT;
        let a = m.factors(64, |r| r / 8, 7);
        let b = m.factors(64, |r| r / 8, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x >= 0.5));
        let c = m.factors(64, |r| r / 8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rank_component_differentiates_within_node() {
        let m = ImbalanceModel { node_sigma: 0.0, rank_sigma: 0.05 };
        let f = m.factors(8, |r| r / 4, 3);
        assert_ne!(f[0], f[1]);
    }
}
