//! # pap-apps — mini-app proxies
//!
//! The paper's application study (§V) uses **FT from the NAS Parallel
//! Benchmarks (class D)**: an iterative 3-D FFT whose transpose step is an
//! `MPI_Alltoall` with 32 768-byte per-pair messages; Alltoall consumes
//! 50–70 % of FT's runtime and over 95 % of its MPI time. We build a proxy
//! that preserves exactly those properties:
//!
//! * per-iteration local FFT compute with a **persistent per-rank imbalance**
//!   (node-structured, as OS noise is) plus per-iteration jitter — the
//!   mechanism that generates the application's arrival pattern (Fig. 1),
//! * the transpose `MPI_Alltoall` (pluggable algorithm — the tuning knob the
//!   whole paper is about),
//! * a small per-iteration checksum `MPI_Allreduce`.
//!
//! A second proxy ([`stencil`]) exercises an Allreduce-dominated workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ft;
pub mod imbalance;
pub mod stencil;

pub use ft::{run_ft, FtConfig, FtReport};
pub use imbalance::ImbalanceModel;
pub use stencil::{run_stencil, StencilConfig, StencilReport};
