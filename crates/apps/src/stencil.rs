//! A stencil/CG-like proxy: compute + small `MPI_Allreduce` per iteration
//! (dot products / convergence checks). Complements FT with a workload
//! where the paper predicts *little* arrival-pattern tuning potential
//! (Allreduce is robust — §III-C).

use pap_collectives::{build, CollSpec, CollectiveKind, TAG_SPAN};
use pap_sim::{run, Job, Label, NoiseModel, Op, Platform, RankProgram, RunOutcome, SimConfig};
use serde::{Deserialize, Serialize};

use crate::ft::FtError;
use crate::imbalance::ImbalanceModel;

/// Stencil proxy configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StencilConfig {
    /// Iterations (e.g. CG steps).
    pub iterations: usize,
    /// Allreduce vector size in bytes (dot product: 8–16 B typically).
    pub allreduce_bytes: u64,
    /// Allreduce algorithm ID (2–6, Table II).
    pub allreduce_alg: u8,
    /// Base compute per iteration (seconds).
    pub compute_per_iter: f64,
    /// Persistent imbalance model.
    pub imbalance: ImbalanceModel,
    /// Seed.
    pub seed: u64,
    /// Noise override (None = platform default).
    pub noise: Option<NoiseModel>,
}

impl StencilConfig {
    /// A CG-like default for `p` ranks.
    pub fn cg_like(p: usize) -> Self {
        StencilConfig {
            iterations: 25,
            allreduce_bytes: 16,
            allreduce_alg: 3,
            compute_per_iter: 2.0 / p as f64,
            imbalance: ImbalanceModel::DEFAULT,
            seed: 0x57E0,
            noise: None,
        }
    }

    /// Replace the Allreduce algorithm.
    pub fn with_allreduce(mut self, alg: u8) -> Self {
        self.allreduce_alg = alg;
        self
    }
}

/// Outcome of a stencil proxy run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StencilReport {
    /// Wall-clock runtime.
    pub total_runtime: f64,
    /// Number of Allreduce calls.
    pub allreduce_calls: usize,
}

/// Run the stencil proxy. Allreduce phases carry label kind 2,
/// sequence = iteration.
pub fn run_stencil(platform: &Platform, cfg: &StencilConfig) -> Result<(StencilReport, RunOutcome), FtError> {
    let p = platform.ranks;
    let factors = cfg.imbalance.factors(p, |r| platform.node_of(r), cfg.seed);
    let mut programs: Vec<RankProgram> = vec![RankProgram::new(); p];
    for it in 0..cfg.iterations {
        let ar = build(
            &CollSpec::new(CollectiveKind::Allreduce, cfg.allreduce_alg, cfg.allreduce_bytes)
                .with_tag_base(it as u64 * TAG_SPAN),
            p,
        )?;
        for (r, prog) in programs.iter_mut().enumerate() {
            prog.push_anon(vec![Op::compute(cfg.compute_per_iter * factors[r])]);
            prog.push_labeled(
                Label { kind: CollectiveKind::Allreduce.label_kind(), seq: it as u32 },
                ar.rank_ops[r].clone(),
            );
        }
    }
    let noise = cfg.noise.unwrap_or(platform.default_noise);
    let out = run(platform, Job::new(programs), &SimConfig { seed: cfg.seed, track_data: false, noise, ..SimConfig::default() })?;
    let report = StencilReport { total_runtime: out.makespan(), allreduce_calls: cfg.iterations };
    Ok((report, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_runs() {
        let platform = Platform::simcluster(8);
        let cfg = StencilConfig::cg_like(8);
        let (rep, out) = run_stencil(&platform, &cfg).unwrap();
        assert!(rep.total_runtime > 0.0);
        assert_eq!(rep.allreduce_calls, 25);
        assert_eq!(out.phases.len(), 8 * 25);
    }

    #[test]
    fn allreduce_choice_matters_less_than_for_ft_alltoall() {
        // Sanity: different allreduce algorithms give similar stencil
        // runtimes (the compute dominates and allreduce is small).
        let platform = Platform::simcluster(8);
        let base = StencilConfig { noise: Some(NoiseModel::None), ..StencilConfig::cg_like(8) };
        let r3 = run_stencil(&platform, &base.clone().with_allreduce(3)).unwrap().0;
        let r4 = run_stencil(&platform, &base.with_allreduce(4)).unwrap().0;
        let ratio = r3.total_runtime / r4.total_runtime;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
