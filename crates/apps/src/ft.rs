//! The NAS-FT proxy (class-D-like): compute + transpose Alltoall +
//! checksum Allreduce per iteration.

use pap_collectives::{build, BuildError, CollSpec, CollectiveKind, TAG_SPAN};
use pap_sim::{run, Job, Label, NoiseModel, Op, Platform, RankProgram, RunOutcome, SimConfig, SimError};
use serde::{Deserialize, Serialize};

use crate::imbalance::ImbalanceModel;

/// FT proxy configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtConfig {
    /// Number of FFT iterations.
    pub iterations: usize,
    /// Per-pair transpose message size in bytes (class D at 1024 ranks:
    /// 32 768 B — the size the paper traces and tunes).
    pub bytes_per_pair: u64,
    /// Base local compute per iteration (seconds), before imbalance.
    pub compute_per_iter: f64,
    /// Alltoall algorithm ID (1–4, Table II) — the knob under study.
    pub alltoall_alg: u8,
    /// Allreduce algorithm ID for the checksum.
    pub allreduce_alg: u8,
    /// Checksum vector size (bytes).
    pub checksum_bytes: u64,
    /// Persistent compute-imbalance model.
    pub imbalance: ImbalanceModel,
    /// Seed for imbalance and engine noise.
    pub seed: u64,
    /// Override the platform's noise model (None = platform default).
    pub noise: Option<NoiseModel>,
}

impl FtConfig {
    /// A class-D-like configuration for `p` ranks: 32 768-byte per-pair
    /// transpose, compute sized so that Alltoall consumes roughly half to
    /// two-thirds of the runtime (§V-A). Fixing the per-pair size while
    /// varying `p` implies a problem volume ∝ p², so per-rank compute
    /// scales ∝ p.
    pub fn class_d_like(p: usize) -> Self {
        FtConfig {
            iterations: 8,
            bytes_per_pair: 32 * 1024,
            compute_per_iter: 4.0e-5 * p as f64,
            alltoall_alg: 2,
            allreduce_alg: 3,
            checksum_bytes: 16,
            imbalance: ImbalanceModel::DEFAULT,
            seed: 0xF7,
            noise: None,
        }
    }

    /// Replace the Alltoall algorithm.
    pub fn with_alltoall(mut self, alg: u8) -> Self {
        self.alltoall_alg = alg;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of an FT proxy run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtReport {
    /// Wall-clock runtime (makespan).
    pub total_runtime: f64,
    /// Critical-path compute: the largest per-rank sum of compute phases
    /// (what an mpisee-style profile would attribute to computation).
    pub compute_time: f64,
    /// `total_runtime − compute_time`: time attributable to MPI (collective
    /// communication + the waiting induced by arrival imbalance).
    pub mpi_time: f64,
    /// Number of Alltoall calls executed.
    pub alltoall_calls: usize,
}

/// Run the FT proxy. Returns the report and the raw outcome (whose labelled
/// phases the tracer consumes: Alltoall has label kind 3, Allreduce kind 2,
/// sequence = iteration).
pub fn run_ft(platform: &Platform, cfg: &FtConfig) -> Result<(FtReport, RunOutcome), FtError> {
    let p = platform.ranks;
    let factors = cfg.imbalance.factors(p, |r| platform.node_of(r), cfg.seed);

    // Build per-iteration collective schedules once per iteration (tags must
    // be unique per call).
    let mut programs: Vec<RankProgram> = vec![RankProgram::new(); p];
    for it in 0..cfg.iterations {
        let a2a = build(
            &CollSpec::new(CollectiveKind::Alltoall, cfg.alltoall_alg, cfg.bytes_per_pair)
                .with_tag_base((2 * it as u64) * TAG_SPAN),
            p,
        )?;
        let chk = build(
            &CollSpec::new(CollectiveKind::Allreduce, cfg.allreduce_alg, cfg.checksum_bytes)
                .with_tag_base((2 * it as u64 + 1) * TAG_SPAN),
            p,
        )?;
        for (r, prog) in programs.iter_mut().enumerate() {
            prog.push_anon(vec![Op::compute(cfg.compute_per_iter * factors[r])]);
            prog.push_labeled(
                Label { kind: CollectiveKind::Alltoall.label_kind(), seq: it as u32 },
                a2a.rank_ops[r].clone(),
            );
            prog.push_labeled(
                Label { kind: CollectiveKind::Allreduce.label_kind(), seq: it as u32 },
                chk.rank_ops[r].clone(),
            );
        }
    }

    let noise = cfg.noise.unwrap_or(platform.default_noise);
    let sim_cfg = SimConfig { seed: cfg.seed, track_data: false, noise, ..SimConfig::default() };
    let out = run(platform, Job::new(programs), &sim_cfg)?;

    // Compute time: reconstruct per-rank compute from phase boundaries —
    // compute segments are the anonymous gaps; equivalently, total minus
    // collective time. We track it directly: per-rank compute =
    // Σ factors[r]·compute_per_iter (noise perturbs it, but phase records
    // give the exact realized values: the enter of iteration i's alltoall
    // minus the exit of iteration i-1's allreduce).
    let mut compute = vec![0.0f64; p];
    let a2a_kind = CollectiveKind::Alltoall.label_kind();
    let chk_kind = CollectiveKind::Allreduce.label_kind();
    let mut prev_exit = vec![0.0f64; p];
    let mut recs: Vec<_> = out.phases.to_vec();
    // Program order within an iteration is alltoall, then allreduce.
    let order = |k: u32| if k == a2a_kind { 0u32 } else { 1 };
    recs.sort_by(|a, b| {
        (a.rank, a.label.seq, order(a.label.kind)).cmp(&(b.rank, b.label.seq, order(b.label.kind)))
    });
    for rec in recs {
        if rec.label.kind == a2a_kind {
            compute[rec.rank] += rec.enter - prev_exit[rec.rank];
        } else if rec.label.kind == chk_kind {
            prev_exit[rec.rank] = rec.exit;
        }
    }
    let compute_time = compute.iter().copied().fold(0.0, f64::max);
    let total_runtime = out.makespan();
    let report = FtReport {
        total_runtime,
        compute_time,
        mpi_time: total_runtime - compute_time,
        alltoall_calls: cfg.iterations,
    };
    Ok((report, out))
}

/// FT proxy errors.
#[derive(Debug)]
pub enum FtError {
    /// Collective schedule construction failed.
    Build(BuildError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Build(e) => write!(f, "build: {e}"),
            FtError::Sim(e) => write!(f, "sim: {e}"),
        }
    }
}

impl std::error::Error for FtError {}

impl From<BuildError> for FtError {
    fn from(e: BuildError) -> Self {
        FtError::Build(e)
    }
}

impl From<SimError> for FtError {
    fn from(e: SimError) -> Self {
        FtError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_tracer::{ideal_observer, CollectiveTrace, TracerConfig};

    fn small_cfg() -> FtConfig {
        FtConfig {
            iterations: 4,
            bytes_per_pair: 2048,
            compute_per_iter: 200e-6,
            alltoall_alg: 2,
            allreduce_alg: 3,
            checksum_bytes: 16,
            imbalance: ImbalanceModel::DEFAULT,
            seed: 3,
            noise: Some(NoiseModel::gaussian(0.02)),
        }
    }

    #[test]
    fn ft_runs_and_reports_sane_numbers() {
        let platform = Platform::simcluster(16);
        let (rep, out) = run_ft(&platform, &small_cfg()).unwrap();
        assert!(rep.total_runtime > 0.0);
        assert!(rep.compute_time > 0.0);
        assert!(rep.mpi_time > 0.0);
        assert!(rep.compute_time < rep.total_runtime);
        assert_eq!(rep.alltoall_calls, 4);
        // 4 alltoall + 4 allreduce labelled phases per rank.
        assert_eq!(out.phases.len(), 16 * 8);
    }

    #[test]
    fn tracer_extracts_persistent_arrival_pattern() {
        let platform = Platform::simcluster(16);
        let (_, out) = run_ft(&platform, &small_cfg()).unwrap();
        let tr = CollectiveTrace::from_outcome(&out, 16, 3, &TracerConfig::default(), ideal_observer);
        assert_eq!(tr.len(), 4);
        let avg = tr.avg_delays();
        // The persistent imbalance must produce a non-uniform pattern.
        let max = avg.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 0.0, "expected non-zero arrival skew");
        // Deterministic given the seed.
        let (_, out2) = run_ft(&platform, &small_cfg()).unwrap();
        let tr2 = CollectiveTrace::from_outcome(&out2, 16, 3, &TracerConfig::default(), ideal_observer);
        assert_eq!(tr.avg_delays(), tr2.avg_delays());
    }

    #[test]
    fn alltoall_algorithm_changes_runtime() {
        let platform = Platform::simcluster(16);
        let r2 = run_ft(&platform, &small_cfg().with_alltoall(2)).unwrap().0;
        let r3 = run_ft(&platform, &small_cfg().with_alltoall(3)).unwrap().0;
        assert_ne!(r2.total_runtime, r3.total_runtime);
    }

    #[test]
    fn more_iterations_more_runtime() {
        let platform = Platform::simcluster(8);
        let mut cfg = small_cfg();
        let short = run_ft(&platform, &cfg).unwrap().0;
        cfg.iterations = 8;
        let long = run_ft(&platform, &cfg).unwrap().0;
        assert!(long.total_runtime > short.total_runtime * 1.5);
    }

    #[test]
    fn bad_algorithm_id_is_reported() {
        let platform = Platform::simcluster(4);
        let mut cfg = small_cfg();
        cfg.alltoall_alg = 99;
        assert!(matches!(run_ft(&platform, &cfg), Err(FtError::Build(_))));
    }
}
