//! Plain-text rendering of the paper's figure semantics (the figure
//! binaries in `pap-bench` print these).

use crate::matrix::BenchMatrix;

/// Render a generic table: `values[row][col]`, formatted by `fmt`, with an
/// extra mark from `mark(row, col)` appended to each cell (e.g. `*` for the
/// best algorithm, `+` for the good set).
pub fn render_table(
    title: &str,
    col_names: &[String],
    row_names: &[String],
    values: &[Vec<f64>],
    fmt: impl Fn(f64) -> String,
    mark: impl Fn(usize, usize) -> char,
) -> String {
    let mut cells: Vec<Vec<String>> = Vec::new();
    for (r, row) in values.iter().enumerate() {
        cells.push(
            row.iter()
                .enumerate()
                .map(|(c, &v)| {
                    let m = mark(r, c);
                    if m == ' ' {
                        fmt(v)
                    } else {
                        format!("{}{m}", fmt(v))
                    }
                })
                .collect(),
        );
    }
    let row_w = row_names.iter().map(|s| s.len()).max().unwrap_or(0).max(8);
    let col_w: Vec<usize> = col_names
        .iter()
        .enumerate()
        .map(|(c, name)| cells.iter().map(|row| row[c].len()).chain([name.len()]).max().unwrap_or(6))
        .collect();

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:row_w$}", ""));
    for (c, name) in col_names.iter().enumerate() {
        out.push_str(&format!("  {:>w$}", name, w = col_w[c]));
    }
    out.push('\n');
    for (r, rname) in row_names.iter().enumerate() {
        out.push_str(&format!("{rname:row_w$}"));
        for (c, cell) in cells[r].iter().enumerate() {
            out.push_str(&format!("  {:>w$}", cell, w = col_w[c]));
        }
        out.push('\n');
    }
    out
}

/// Fig. 5-style rendering: runtimes in milliseconds with `*` on the fastest
/// per row and `+` on the rest of the within-`tol` good set.
pub fn render_runtime_table(m: &BenchMatrix, tol: f64) -> String {
    let col_names: Vec<String> = m.algs.iter().map(|a| format!("A{a}")).collect();
    let good: Vec<Vec<bool>> = m
        .patterns
        .iter()
        .map(|p| {
            let set = m.good_set(p, tol).unwrap_or_default();
            m.algs.iter().map(|a| set.contains(a)).collect()
        })
        .collect();
    let best: Vec<usize> = m
        .values
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();
    render_table(
        &format!("{} {} B — mean last delay d̂ [ms] (*: fastest, +: within {:.0}%)", m.kind, m.bytes, tol * 100.0),
        &col_names,
        &m.patterns,
        &m.values,
        |v| format!("{:.3}", v * 1e3),
        |r, c| {
            if best[r] == c {
                '*'
            } else if good[r][c] {
                '+'
            } else {
                ' '
            }
        },
    )
}

/// Fig. 8-style rendering: row-normalized values with the `Avg` row
/// appended, absolute times in parentheses.
pub fn render_normalized_table(m: &BenchMatrix, exclude_from_avg: &[&str]) -> String {
    let norm = m.normalized_rows();
    let avg = m.avg_normalized(exclude_from_avg);
    let col_names: Vec<String> = m.algs.iter().map(|a| format!("A{a}")).collect();
    let mut rows = m.patterns.clone();
    rows.push(if exclude_from_avg.is_empty() {
        "Avg".to_string()
    } else {
        format!("Avg (excl. {})", exclude_from_avg.join(","))
    });
    let mut values = norm.clone();
    values.push(avg);
    let mut out = render_table(
        &format!("{} {} B — normalized d̂ (1.0 = fastest per row)", m.kind, m.bytes),
        &col_names,
        &rows,
        &values,
        |v| format!("{v:.2}"),
        |r, c| {
            if r < norm.len() && norm[r][c] <= 1.0 + 1e-12 {
                '*'
            } else {
                ' '
            }
        },
    );
    out.push_str("absolute d̂ [ms]:\n");
    for (r, p) in m.patterns.iter().enumerate() {
        let abs: Vec<String> = m.values[r].iter().map(|v| format!("{:.3}", v * 1e3)).collect();
        out.push_str(&format!("  {p}: ({})\n", abs.join(", ")));
    }
    out
}

/// Fig. 6-style rendering: robustness classes as `-` (green, absorbs skew),
/// `.` (neutral), `#` (red, degrades), with the numeric value.
pub fn render_robustness_table(m: &BenchMatrix, threshold: f64) -> Option<String> {
    let vals = m.robustness_vs_no_delay()?;
    let classes = m.robustness_classes(threshold)?;
    let col_names: Vec<String> = m.algs.iter().map(|a| format!("A{a}")).collect();
    Some(render_table(
        &format!(
            "{} {} B — robustness (d̂_pattern/d̂_no_delay − 1; -:≥{:.0}% faster, #:≥{:.0}% slower)",
            m.kind,
            m.bytes,
            threshold * 100.0,
            threshold * 100.0
        ),
        &col_names,
        &m.patterns,
        &vals,
        |v| format!("{v:+.3}"),
        |r, c| match classes[r][c] {
            -1 => '-',
            1 => '#',
            _ => ' ',
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_collectives::CollectiveKind;

    fn matrix() -> BenchMatrix {
        BenchMatrix {
            kind: CollectiveKind::Reduce,
            bytes: 8,
            algs: vec![5, 6],
            patterns: vec!["no_delay".into(), "last_delayed".into()],
            values: vec![vec![1e-5, 1.04e-5], vec![5e-5, 1.2e-5]],
        }
    }

    #[test]
    fn runtime_table_marks_best_and_good() {
        let s = render_runtime_table(&matrix(), 0.05);
        assert!(s.contains("A5") && s.contains("A6"));
        assert!(s.contains('*'));
        assert!(s.contains('+'), "alg 6 is within 5% at no_delay:\n{s}");
        assert!(s.contains("no_delay") && s.contains("last_delayed"));
    }

    #[test]
    fn normalized_table_has_avg_row() {
        let s = render_normalized_table(&matrix(), &[]);
        assert!(s.contains("Avg"));
        assert!(s.contains("1.00"));
        assert!(s.contains("absolute d̂"));
    }

    #[test]
    fn robustness_table_classifies() {
        let s = render_robustness_table(&matrix(), 0.25).unwrap();
        // Alg 5 slows 5x under last_delayed → '#' mark.
        assert!(s.contains('#'), "{s}");
        assert!(s.contains("+4.000"), "{s}");
    }

    #[test]
    fn generic_table_alignment_smoke() {
        let s = render_table(
            "t",
            &["a".into(), "bb".into()],
            &["row1".into()],
            &[vec![1.0, 2.0]],
            |v| format!("{v:.1}"),
            |_, _| ' ',
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
    }
}
