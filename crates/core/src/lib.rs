//! # pap-core — arrival-pattern-aware algorithm selection
//!
//! The paper's contribution (§IV-C, §V-C): instead of selecting the
//! collective algorithm that is fastest when all processes enter
//! simultaneously (the status quo of MPI tuning tools), benchmark every
//! algorithm under a *suite of arrival patterns* and select the one with the
//! best **average normalized runtime across patterns** — the most *robust*
//! algorithm. The paper shows this choice predicts in-application
//! performance (NAS-FT) where the No-delay choice misleads.
//!
//! Pipeline:
//!
//! 1. [`pap_microbench::sweep()`] measures a `(algorithm × pattern)` grid;
//! 2. [`BenchMatrix`] derives the paper's figure semantics — row
//!    normalization (Fig. 8), the within-5 % "good set" (Fig. 5), ±25 %
//!    robustness classes (Fig. 6), per-algorithm averages (Fig. 8 last row);
//! 3. [`select`] applies a [`SelectionPolicy`];
//! 4. [`TuningTable`] persists decisions per (machine, collective, ranks,
//!    message size) — the artifact an MPI library's decision logic consumes;
//! 5. [`predict`] projects application runtimes from micro-benchmark data
//!    (Fig. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod diff;
pub mod fault;
pub mod matrix;
pub mod predict;
pub mod report;
pub mod selection;
pub mod table;
pub mod tuner;

pub use decision::{DecisionLogic, DecisionSource};
pub use diff::{differential_grid, kendall, spearman, DiffCell};
pub use fault::{render_fault_table, select_fault_robust, FaultMatrix};
pub use matrix::BenchMatrix;
pub use predict::{predict_app_runtime, AppPrediction};
pub use selection::{select, select_with_faults, SelectionPolicy};
pub use table::{TuningEntry, TuningTable};
pub use tuner::{tune_machine, TunePlan, TuneRecord};
