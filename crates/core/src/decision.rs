//! Library-side decision logic: the component inside an MPI library that,
//! at `MPI_Alltoall(...)` time, maps (collective, communicator size,
//! message size) to an algorithm using a tuning table — with the
//! interpolation and fallback rules real decision maps need (tuning points
//! never cover every size, and jobs run at communicator sizes nobody tuned).

use pap_collectives::registry::experiment_ids;
use pap_collectives::CollectiveKind;
use serde::{Deserialize, Serialize};

use crate::table::TuningTable;

/// A compiled decision function for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionLogic {
    /// Machine name the table was tuned on.
    pub machine: String,
    /// The underlying tuning decisions.
    pub table: TuningTable,
}

/// How a decision was reached (for diagnostics/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionSource {
    /// Exact (ranks, size) tuning point.
    Exact,
    /// Nearest tuning point in log(ranks) × log(bytes) space.
    Interpolated,
    /// No tuning data for the collective: the library default (the lowest
    /// registered experiment algorithm ID).
    Fallback,
}

impl DecisionLogic {
    /// Wrap a tuning table.
    pub fn new(machine: impl Into<String>, table: TuningTable) -> Self {
        DecisionLogic { machine: machine.into(), table }
    }

    /// Decide the algorithm for one collective invocation.
    pub fn decide(&self, kind: CollectiveKind, ranks: usize, bytes: u64) -> (u8, DecisionSource) {
        // Exact point?
        if let Some(e) = self
            .table
            .entries
            .iter()
            .find(|e| e.machine == self.machine && e.kind == kind && e.ranks == ranks && e.bytes == bytes)
        {
            return (e.alg, DecisionSource::Exact);
        }
        // Nearest in log-log space over all entries of this (machine, kind).
        let lnl = |x: f64| x.max(1.0).ln();
        let best = self
            .table
            .entries
            .iter()
            .filter(|e| e.machine == self.machine && e.kind == kind)
            .min_by(|a, b| {
                let d = |e: &&crate::table::TuningEntry| {
                    let dr = lnl(e.ranks as f64) - lnl(ranks as f64);
                    let db = lnl(e.bytes as f64) - lnl(bytes as f64);
                    dr * dr + db * db
                };
                d(a).partial_cmp(&d(b)).expect("finite distances")
            });
        match best {
            Some(e) => (e.alg, DecisionSource::Interpolated),
            None => (
                experiment_ids(kind).first().copied().unwrap_or(1),
                DecisionSource::Fallback,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TuningEntry;

    fn entry(kind: CollectiveKind, ranks: usize, bytes: u64, alg: u8) -> TuningEntry {
        TuningEntry { machine: "Hydra".into(), kind, ranks, bytes, alg, policy: "robust".into() }
    }

    fn logic() -> DecisionLogic {
        let mut t = TuningTable::new();
        t.insert(entry(CollectiveKind::Alltoall, 1024, 8, 3));
        t.insert(entry(CollectiveKind::Alltoall, 1024, 1 << 20, 2));
        t.insert(entry(CollectiveKind::Alltoall, 64, 8, 3));
        t.insert(entry(CollectiveKind::Reduce, 1024, 8, 5));
        DecisionLogic::new("Hydra", t)
    }

    #[test]
    fn exact_points_hit() {
        let l = logic();
        assert_eq!(l.decide(CollectiveKind::Alltoall, 1024, 8), (3, DecisionSource::Exact));
        assert_eq!(l.decide(CollectiveKind::Alltoall, 1024, 1 << 20), (2, DecisionSource::Exact));
    }

    #[test]
    fn interpolation_picks_nearest_in_loglog() {
        let l = logic();
        // 1024 ranks, 64 B → nearest is (1024, 8).
        assert_eq!(l.decide(CollectiveKind::Alltoall, 1024, 64), (3, DecisionSource::Interpolated));
        // 1024 ranks, 256 KiB → nearest is (1024, 1 MiB).
        assert_eq!(
            l.decide(CollectiveKind::Alltoall, 1024, 256 * 1024),
            (2, DecisionSource::Interpolated)
        );
        // 96 ranks, 8 B → nearest is (64, 8).
        assert_eq!(l.decide(CollectiveKind::Alltoall, 96, 8), (3, DecisionSource::Interpolated));
    }

    #[test]
    fn fallback_when_kind_untouched() {
        let l = logic();
        let (alg, src) = l.decide(CollectiveKind::Allreduce, 1024, 8);
        assert_eq!(src, DecisionSource::Fallback);
        assert_eq!(alg, 2, "lowest registered Allreduce experiment id");
    }

    #[test]
    fn serde_round_trip() {
        let l = logic();
        let js = serde_json::to_string(&l).unwrap();
        let back: DecisionLogic = serde_json::from_str(&js).unwrap();
        assert_eq!(back.decide(CollectiveKind::Alltoall, 1024, 8).0, 3);
    }
}
