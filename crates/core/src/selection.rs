//! Selection policies: the status quo vs. the paper's robust selection,
//! plus the fault-robust extension (degraded-mode selection).

use serde::{Deserialize, Serialize};

use crate::fault::{select_fault_robust, FaultMatrix};
use crate::matrix::BenchMatrix;

/// How to pick an algorithm from a benchmark matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Status quo (OSU-style tuning): the algorithm fastest when all
    /// processes are synchronized (`no_delay` row).
    NoDelayFastest,
    /// The paper's proposal (§V-C): the algorithm with the smallest
    /// *average normalized runtime* across the pattern suite, optionally
    /// excluding named patterns (e.g. a traced application pattern held out
    /// for validation).
    RobustAverage {
        /// Pattern names excluded from the average.
        exclude: Vec<String>,
    },
    /// Oracle with knowledge of one specific pattern (e.g. the traced
    /// FT-Scenario): the fastest algorithm under that pattern.
    BestUnderPattern(String),
    /// Degraded-mode extension: among algorithms whose worst-case
    /// degradation across the fault grid stays within `max_degradation`,
    /// the one fastest on the clean row (minimax fallback when none
    /// qualify). Needs a [`FaultMatrix`] — use [`select_with_faults`].
    FaultRobust {
        /// Worst-case degradation bound (`1.0` = at most 2× slower under
        /// any fault scenario).
        max_degradation: f64,
    },
}

impl SelectionPolicy {
    /// The paper's robust policy with no exclusions.
    pub fn robust() -> Self {
        SelectionPolicy::RobustAverage { exclude: Vec::new() }
    }
}

/// Apply a policy to a matrix; returns the chosen algorithm ID.
pub fn select(matrix: &BenchMatrix, policy: &SelectionPolicy) -> Result<u8, String> {
    match policy {
        SelectionPolicy::NoDelayFastest => matrix
            .best_in("no_delay")
            .ok_or_else(|| "matrix has no no_delay row".to_string()),
        SelectionPolicy::RobustAverage { exclude } => {
            let ex: Vec<&str> = exclude.iter().map(String::as_str).collect();
            let avg = matrix.avg_normalized(&ex);
            let (i, _) = avg
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite averages"))
                .ok_or_else(|| "empty matrix".to_string())?;
            Ok(matrix.algs[i])
        }
        SelectionPolicy::BestUnderPattern(p) => matrix
            .best_in(p)
            .ok_or_else(|| format!("matrix has no pattern '{p}'")),
        SelectionPolicy::FaultRobust { .. } => Err(
            "FaultRobust needs a fault matrix; use select_with_faults".to_string()
        ),
    }
}

/// Like [`select`], but with an optional fault grid: the
/// [`SelectionPolicy::FaultRobust`] policy draws on `faults`, every other
/// policy ignores it and behaves exactly like [`select`].
pub fn select_with_faults(
    matrix: &BenchMatrix,
    faults: Option<&FaultMatrix>,
    policy: &SelectionPolicy,
) -> Result<u8, String> {
    match policy {
        SelectionPolicy::FaultRobust { max_degradation } => {
            let fm = faults.ok_or_else(|| {
                "FaultRobust policy requires a measured fault matrix".to_string()
            })?;
            select_fault_robust(fm, *max_degradation)
        }
        other => select(matrix, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_collectives::CollectiveKind;

    fn matrix() -> BenchMatrix {
        BenchMatrix {
            kind: CollectiveKind::Alltoall,
            bytes: 32768,
            algs: vec![1, 2, 3],
            patterns: vec!["no_delay".into(), "ascending".into(), "ft_scenario".into()],
            values: vec![
                vec![1.0, 1.3, 4.0],
                vec![5.0, 1.5, 2.0],
                vec![6.0, 1.4, 2.0],
            ],
        }
    }

    #[test]
    fn no_delay_policy_picks_synchronized_winner() {
        assert_eq!(select(&matrix(), &SelectionPolicy::NoDelayFastest).unwrap(), 1);
    }

    #[test]
    fn robust_policy_picks_consistent_algorithm() {
        // Alg 1 wins no_delay but collapses elsewhere; alg 2 is near-best
        // everywhere.
        assert_eq!(select(&matrix(), &SelectionPolicy::robust()).unwrap(), 2);
    }

    #[test]
    fn robust_policy_respects_exclusions() {
        let policy = SelectionPolicy::RobustAverage {
            exclude: vec!["ascending".into(), "ft_scenario".into()],
        };
        // With only no_delay left, it degenerates to the status quo.
        assert_eq!(select(&matrix(), &policy).unwrap(), 1);
    }

    #[test]
    fn oracle_policy_uses_named_pattern() {
        let policy = SelectionPolicy::BestUnderPattern("ft_scenario".into());
        assert_eq!(select(&matrix(), &policy).unwrap(), 2);
        assert!(select(&matrix(), &SelectionPolicy::BestUnderPattern("x".into())).is_err());
    }

    #[test]
    fn fault_robust_policy_needs_a_fault_matrix() {
        let policy = SelectionPolicy::FaultRobust { max_degradation: 1.0 };
        assert!(select(&matrix(), &policy).is_err());
        assert!(select_with_faults(&matrix(), None, &policy).is_err());
    }

    #[test]
    fn fault_robust_policy_flips_the_no_delay_choice() {
        // Alg 1 is the clean/no-delay winner but starves under crash_leaf;
        // the fault-robust policy routes around it.
        let fm = FaultMatrix {
            kind: CollectiveKind::Alltoall,
            bytes: 32768,
            algs: vec![1, 2, 3],
            scenarios: vec!["clean".into(), "crash_leaf".into()],
            values: vec![
                vec![Some(1.0), Some(1.3), Some(1.4)],
                vec![None, Some(1.5), Some(2.9)],
            ],
            statically_decided: Vec::new(),
            grid_version: 0,
        };
        let policy = SelectionPolicy::FaultRobust { max_degradation: 1.0 };
        assert_eq!(select_with_faults(&matrix(), Some(&fm), &policy).unwrap(), 2);
        // Non-fault policies ignore the grid entirely.
        assert_eq!(
            select_with_faults(&matrix(), Some(&fm), &SelectionPolicy::NoDelayFastest).unwrap(),
            1
        );
    }
}
