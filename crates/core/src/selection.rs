//! Selection policies: the status quo vs. the paper's robust selection.

use serde::{Deserialize, Serialize};

use crate::matrix::BenchMatrix;

/// How to pick an algorithm from a benchmark matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Status quo (OSU-style tuning): the algorithm fastest when all
    /// processes are synchronized (`no_delay` row).
    NoDelayFastest,
    /// The paper's proposal (§V-C): the algorithm with the smallest
    /// *average normalized runtime* across the pattern suite, optionally
    /// excluding named patterns (e.g. a traced application pattern held out
    /// for validation).
    RobustAverage {
        /// Pattern names excluded from the average.
        exclude: Vec<String>,
    },
    /// Oracle with knowledge of one specific pattern (e.g. the traced
    /// FT-Scenario): the fastest algorithm under that pattern.
    BestUnderPattern(String),
}

impl SelectionPolicy {
    /// The paper's robust policy with no exclusions.
    pub fn robust() -> Self {
        SelectionPolicy::RobustAverage { exclude: Vec::new() }
    }
}

/// Apply a policy to a matrix; returns the chosen algorithm ID.
pub fn select(matrix: &BenchMatrix, policy: &SelectionPolicy) -> Result<u8, String> {
    match policy {
        SelectionPolicy::NoDelayFastest => matrix
            .best_in("no_delay")
            .ok_or_else(|| "matrix has no no_delay row".to_string()),
        SelectionPolicy::RobustAverage { exclude } => {
            let ex: Vec<&str> = exclude.iter().map(String::as_str).collect();
            let avg = matrix.avg_normalized(&ex);
            let (i, _) = avg
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite averages"))
                .ok_or_else(|| "empty matrix".to_string())?;
            Ok(matrix.algs[i])
        }
        SelectionPolicy::BestUnderPattern(p) => matrix
            .best_in(p)
            .ok_or_else(|| format!("matrix has no pattern '{p}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_collectives::CollectiveKind;

    fn matrix() -> BenchMatrix {
        BenchMatrix {
            kind: CollectiveKind::Alltoall,
            bytes: 32768,
            algs: vec![1, 2, 3],
            patterns: vec!["no_delay".into(), "ascending".into(), "ft_scenario".into()],
            values: vec![
                vec![1.0, 1.3, 4.0],
                vec![5.0, 1.5, 2.0],
                vec![6.0, 1.4, 2.0],
            ],
        }
    }

    #[test]
    fn no_delay_policy_picks_synchronized_winner() {
        assert_eq!(select(&matrix(), &SelectionPolicy::NoDelayFastest).unwrap(), 1);
    }

    #[test]
    fn robust_policy_picks_consistent_algorithm() {
        // Alg 1 wins no_delay but collapses elsewhere; alg 2 is near-best
        // everywhere.
        assert_eq!(select(&matrix(), &SelectionPolicy::robust()).unwrap(), 2);
    }

    #[test]
    fn robust_policy_respects_exclusions() {
        let policy = SelectionPolicy::RobustAverage {
            exclude: vec!["ascending".into(), "ft_scenario".into()],
        };
        // With only no_delay left, it degenerates to the status quo.
        assert_eq!(select(&matrix(), &policy).unwrap(), 1);
    }

    #[test]
    fn oracle_policy_uses_named_pattern() {
        let policy = SelectionPolicy::BestUnderPattern("ft_scenario".into());
        assert_eq!(select(&matrix(), &policy).unwrap(), 2);
        assert!(select(&matrix(), &SelectionPolicy::BestUnderPattern("x".into())).is_err());
    }
}
