//! The benchmark matrix and the paper's derived metrics.

use pap_collectives::CollectiveKind;
use pap_microbench::SweepResult;
use serde::{Deserialize, Serialize};

/// `(pattern × algorithm)` grid of mean last-delay runtimes, with the
/// derived quantities used throughout the paper's figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMatrix {
    /// Collective under study.
    pub kind: CollectiveKind,
    /// Message size (bytes).
    pub bytes: u64,
    /// Algorithm IDs (columns).
    pub algs: Vec<u8>,
    /// Pattern names (rows); `"no_delay"` is expected to be present for the
    /// robustness metrics.
    pub patterns: Vec<String>,
    /// `values[row][col]` = mean last delay `d̂` of `algs[col]` under
    /// `patterns[row]`, in seconds.
    pub values: Vec<Vec<f64>>,
}

impl BenchMatrix {
    /// Assemble from a sweep result.
    ///
    /// # Panics
    /// Panics if the sweep grid is incomplete.
    pub fn from_sweep(sweep: &SweepResult) -> Self {
        let values = sweep
            .patterns
            .iter()
            .map(|pat| {
                sweep
                    .algs
                    .iter()
                    .map(|&a| {
                        sweep
                            .mean_last(a, pat)
                            .unwrap_or_else(|| panic!("missing cell ({a}, {pat})"))
                    })
                    .collect()
            })
            .collect();
        BenchMatrix {
            kind: sweep.kind,
            bytes: sweep.bytes,
            algs: sweep.algs.clone(),
            patterns: sweep.patterns.clone(),
            values,
        }
    }

    /// Index of a pattern row.
    pub fn pattern_index(&self, pattern: &str) -> Option<usize> {
        self.patterns.iter().position(|p| p == pattern)
    }

    /// Index of an algorithm column.
    pub fn alg_index(&self, alg: u8) -> Option<usize> {
        self.algs.iter().position(|&a| a == alg)
    }

    /// Value of one cell.
    pub fn value(&self, pattern: &str, alg: u8) -> Option<f64> {
        Some(self.values[self.pattern_index(pattern)?][self.alg_index(alg)?])
    }

    /// Fastest algorithm under one pattern.
    pub fn best_in(&self, pattern: &str) -> Option<u8> {
        let row = &self.values[self.pattern_index(pattern)?];
        let (i, _) = row
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite runtimes"))?;
        Some(self.algs[i])
    }

    /// Row-normalized values (each row divided by its minimum), the
    /// semantics of the Fig. 8 heatmaps: the fastest algorithm per pattern
    /// reads 1.0.
    pub fn normalized_rows(&self) -> Vec<Vec<f64>> {
        self.values
            .iter()
            .map(|row| {
                let min = row.iter().copied().fold(f64::INFINITY, f64::min);
                row.iter().map(|v| v / min).collect()
            })
            .collect()
    }

    /// The "good set" of one pattern (Fig. 5): algorithms within `tol`
    /// (e.g. 0.05) of the fastest, which the paper treats as
    /// indistinguishable.
    pub fn good_set(&self, pattern: &str, tol: f64) -> Option<Vec<u8>> {
        let row = &self.values[self.pattern_index(pattern)?];
        let min = row.iter().copied().fold(f64::INFINITY, f64::min);
        Some(
            row.iter()
                .enumerate()
                .filter(|(_, &v)| v <= min * (1.0 + tol))
                .map(|(i, _)| self.algs[i])
                .collect(),
        )
    }

    /// Per-algorithm average of the normalized rows (the `Avg` row of
    /// Fig. 8), optionally excluding some patterns (the paper's
    /// `Avg (excl. FT-Sce.)`). The `no_delay` row **is** included unless
    /// listed in `exclude`.
    pub fn avg_normalized(&self, exclude: &[&str]) -> Vec<f64> {
        let norm = self.normalized_rows();
        let included: Vec<usize> = (0..self.patterns.len())
            .filter(|&i| !exclude.contains(&self.patterns[i].as_str()))
            .collect();
        assert!(!included.is_empty(), "all patterns excluded");
        (0..self.algs.len())
            .map(|c| included.iter().map(|&r| norm[r][c]).sum::<f64>() / included.len() as f64)
            .collect()
    }

    /// Robustness values (Fig. 6): `d̂ᵏ/d̂^{no_delay} − 1` per (pattern,
    /// algorithm). Negative = the algorithm absorbed skew; positive = it
    /// slowed down. Requires a `no_delay` row.
    pub fn robustness_vs_no_delay(&self) -> Option<Vec<Vec<f64>>> {
        let nd = self.pattern_index("no_delay")?;
        Some(
            self.values
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(c, v)| v / self.values[nd][c] - 1.0)
                        .collect()
                })
                .collect(),
        )
    }

    /// Robustness classification with the paper's ±25 % thresholds:
    /// `-1` (green: ≥25 % faster), `0` (gray: within ±25 %), `+1` (red:
    /// ≥25 % slower).
    pub fn robustness_classes(&self, threshold: f64) -> Option<Vec<Vec<i8>>> {
        Some(
            self.robustness_vs_no_delay()?
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&v| {
                            if v <= -threshold {
                                -1
                            } else if v >= threshold {
                                1
                            } else {
                                0
                            }
                        })
                        .collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> BenchMatrix {
        BenchMatrix {
            kind: CollectiveKind::Alltoall,
            bytes: 32768,
            algs: vec![1, 2, 3],
            patterns: vec!["no_delay".into(), "ascending".into(), "last_delayed".into()],
            values: vec![
                vec![1.0, 2.0, 4.0],  // no_delay: alg 1 fastest
                vec![3.0, 2.0, 2.2],  // ascending: alg 2 fastest
                vec![10.0, 2.5, 2.0], // last_delayed: alg 3 fastest
            ],
        }
    }

    #[test]
    fn best_and_value_lookup() {
        let m = matrix();
        assert_eq!(m.best_in("no_delay"), Some(1));
        assert_eq!(m.best_in("last_delayed"), Some(3));
        assert_eq!(m.value("ascending", 2), Some(2.0));
        assert_eq!(m.value("ascending", 9), None);
        assert_eq!(m.best_in("nope"), None);
    }

    #[test]
    fn normalization_sets_row_min_to_one() {
        let m = matrix();
        let n = m.normalized_rows();
        for row in &n {
            let min = row.iter().copied().fold(f64::INFINITY, f64::min);
            assert!((min - 1.0).abs() < 1e-12);
        }
        assert!((n[2][0] - 5.0).abs() < 1e-12); // 10.0 / 2.0
    }

    #[test]
    fn good_set_uses_tolerance() {
        let m = matrix();
        assert_eq!(m.good_set("ascending", 0.05).unwrap(), vec![2]);
        assert_eq!(m.good_set("ascending", 0.15).unwrap(), vec![2, 3]);
    }

    #[test]
    fn avg_normalized_ranks_robust_algorithms() {
        let m = matrix();
        let avg = m.avg_normalized(&[]);
        // Alg 1 is great at no_delay but terrible elsewhere; algs 2 and 3
        // are consistently decent → lower average.
        assert!(avg[1] < avg[0], "avg {:?}", avg);
        assert!(avg[2] < avg[0]);
        // Excluding the pattern where alg 1 collapses changes its score.
        let avg_ex = m.avg_normalized(&["last_delayed"]);
        assert!(avg_ex[0] < avg[0]);
    }

    #[test]
    fn robustness_signs_match_paper_semantics() {
        let m = matrix();
        let r = m.robustness_vs_no_delay().unwrap();
        // no_delay row is all zeros.
        assert!(r[0].iter().all(|&v| v.abs() < 1e-12));
        // alg 1 slows down 10x under last_delayed → strongly positive.
        assert!(r[2][0] > 8.0);
        // alg 3 absorbs skew (4.0 → 2.0) → negative.
        assert!(r[2][2] < -0.25);
        let classes = m.robustness_classes(0.25).unwrap();
        assert_eq!(classes[2][0], 1);
        assert_eq!(classes[2][2], -1);
        assert_eq!(classes[0][0], 0);
    }

    #[test]
    #[should_panic]
    fn excluding_everything_panics() {
        let m = matrix();
        let _ = m.avg_normalized(&["no_delay", "ascending", "last_delayed"]);
    }
}
