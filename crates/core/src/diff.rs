//! Differential cross-validation between the simulator and analytical
//! backends.
//!
//! The analytical backend (`pap-model`) substitutes for the simulator in
//! selection grids; this module keeps it honest. [`differential_grid`] runs
//! the *same* (algorithm × size × pattern) grid through both backends —
//! identical patterns, identical skews — and summarizes, per (collective,
//! pattern) cell, how well the model reproduces the simulator's *ranking*
//! of (algorithm, size) pairs (Spearman/Kendall rank correlation) and its
//! magnitudes (relative error). Selection only needs the ranking to be
//! right; the differential tests assert Spearman ≥ 0.8 on the Fig. 4 grid.

use pap_arrival::Shape;
use pap_microbench::{calibrate_avg_runtime, sweep, Backend, BenchConfig, SkewPolicy, SweepResult};
use pap_sim::Platform;
use serde::{Deserialize, Serialize};

use pap_collectives::CollectiveKind;

/// Model-vs-sim agreement for one (collective, pattern) cell, computed over
/// all (algorithm, size) pairs of the grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffCell {
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Pattern name.
    pub pattern: String,
    /// Spearman rank correlation between the two backends' mean last
    /// delays over the (algorithm, size) pairs.
    pub spearman: f64,
    /// Kendall τ-b over the same pairs.
    pub kendall: f64,
    /// Median of `|model − sim| / sim` over the pairs.
    pub median_rel_err: f64,
    /// Worst-case relative error over the pairs.
    pub max_rel_err: f64,
    /// Labels `"alg@size"` of the pairs, ordered fastest-first under the
    /// *simulator*.
    pub sim_order: Vec<String>,
    /// The same labels ordered fastest-first under the *model*.
    pub model_order: Vec<String>,
}

/// Run the matched grid through both backends.
///
/// Skews are calibrated once per size with the *simulator* backend
/// (`skew_factor × t̄ᵃ`, the paper's §III-B rule) and then applied as
/// [`SkewPolicy::Fixed`] to both sweeps, so the two backends face exactly
/// the same arrival patterns and any disagreement is attributable to the
/// cost models alone.
pub fn differential_grid(
    platform: &Platform,
    kind: CollectiveKind,
    algs: &[u8],
    sizes: &[u64],
    shapes: &[Shape],
    skew_factor: f64,
    cfg: &BenchConfig,
) -> Result<Vec<DiffCell>, pap_microbench::BenchError> {
    let sim_cfg = cfg.clone().with_backend(Backend::Sim);
    let model_cfg = cfg.clone().with_backend(Backend::Model);
    let mut per_size: Vec<(u64, SweepResult, SweepResult)> = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let skew = skew_factor * calibrate_avg_runtime(platform, kind, algs, bytes, &sim_cfg)?;
        let s = sweep(platform, kind, algs, shapes, bytes, SkewPolicy::Fixed(skew), &[], &sim_cfg)?;
        let m = sweep(platform, kind, algs, shapes, bytes, SkewPolicy::Fixed(skew), &[], &model_cfg)?;
        per_size.push((bytes, s, m));
    }

    let mut cells = Vec::with_capacity(shapes.len());
    for shape in shapes {
        let pattern = shape.name().to_string();
        let mut labels = Vec::new();
        let mut sim_vals = Vec::new();
        let mut model_vals = Vec::new();
        for (bytes, s, m) in &per_size {
            for &alg in algs {
                let sv = s.mean_last(alg, &pattern).expect("sim cell present");
                let mv = m.mean_last(alg, &pattern).expect("model cell present");
                labels.push(format!("{alg}@{bytes}"));
                sim_vals.push(sv);
                model_vals.push(mv);
            }
        }
        let mut rel: Vec<f64> =
            sim_vals.iter().zip(&model_vals).map(|(&s, &m)| (m - s).abs() / s).collect();
        rel.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_rel_err = if rel.is_empty() { 0.0 } else { rel[rel.len() / 2] };
        let max_rel_err = rel.last().copied().unwrap_or(0.0);
        cells.push(DiffCell {
            kind,
            pattern,
            spearman: spearman(&sim_vals, &model_vals),
            kendall: kendall(&sim_vals, &model_vals),
            median_rel_err,
            max_rel_err,
            sim_order: order_labels(&labels, &sim_vals),
            model_order: order_labels(&labels, &model_vals),
        });
    }
    Ok(cells)
}

/// Labels sorted ascending by value (ties broken by original position, so
/// the order is deterministic).
fn order_labels(labels: &[String], vals: &[f64]) -> Vec<String> {
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap().then(a.cmp(&b)));
    idx.into_iter().map(|i| labels[i].clone()).collect()
}

/// Fractional ranks (average rank for ties), the classical Spearman input.
fn ranks(vals: &[f64]) -> Vec<f64> {
    let n = vals.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && vals[idx[j + 1]] == vals[idx[i]] {
            j += 1;
        }
        // Positions i..=j are tied: assign the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (tie-aware: Pearson correlation of the
/// fractional ranks). Returns 1.0 for degenerate inputs (n < 2 or constant
/// ranks on either side — nothing to disagree about).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 1.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 1.0;
    }
    cov / (va * vb).sqrt()
}

/// Kendall τ-b (tie-corrected). Returns 1.0 for degenerate inputs.
pub fn kendall(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                continue;
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = concordant + discordant;
    let denom = (((n0 + ties_a) as f64) * ((n0 + ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return 1.0;
    }
    (concordant - discordant) as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_detects_perfect_and_reversed_order() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let r = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &r) + 1.0).abs() < 1e-12);
        assert!((kendall(&a, &b) - 1.0).abs() < 1e-12);
        assert!((kendall(&a, &r) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_averaged() {
        let r = ranks(&[5.0, 1.0, 5.0, 3.0]);
        assert_eq!(r, vec![3.5, 1.0, 3.5, 2.0]);
        // Tie-aware correlation of a constant vector is defined as 1.
        assert_eq!(spearman(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn differential_grid_smoke() {
        // A tiny grid: 8 ranks, one collective, two sizes — asserts the
        // harness plumbing, not the Fig. 4 thresholds (tests/differential.rs
        // does that at scale).
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let shapes = [Shape::NoDelay, Shape::LastDelayed];
        let cells = differential_grid(
            &platform,
            CollectiveKind::Allreduce,
            &[2, 3, 4],
            &[64, 4096],
            &shapes,
            1.5,
            &cfg,
        )
        .unwrap();
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.sim_order.len(), 6);
            assert!(c.spearman >= -1.0 && c.spearman <= 1.0);
            assert!(c.max_rel_err.is_finite());
        }
    }
}
