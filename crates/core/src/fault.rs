//! Degraded-mode selection: the Fig. 6 robustness metric extended from
//! arrival skew to runtime faults.
//!
//! A [`FaultMatrix`] is the `(scenario × algorithm)` analogue of
//! [`crate::BenchMatrix`], assembled from a
//! [`pap_microbench::FaultSweepResult`]. Its headline derived quantity is
//! per-cell **degradation** `d̂_scenario/d̂_clean − 1` — exactly the
//! robustness-vs-no-delay semantics of Fig. 6, with the clean (fault-free)
//! run as the baseline and `None` for cells whose algorithm never finished
//! (a crash starved its schedule). The fault-robust selection policy
//! prefers algorithms with *bounded worst-case degradation*: among those
//! whose worst scenario stays under a bound, pick the fastest clean one;
//! if none qualify, fall back to minimax (the smallest worst case).

use pap_collectives::CollectiveKind;
use pap_microbench::FaultSweepResult;
use serde::{Deserialize, Serialize};

use crate::report::render_table;

/// `(scenario × algorithm)` grid of degraded-mode runtimes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMatrix {
    /// Collective under study.
    pub kind: CollectiveKind,
    /// Message size (bytes).
    pub bytes: u64,
    /// Algorithm IDs (columns).
    pub algs: Vec<u8>,
    /// Scenario names (rows); `"clean"` must be present and complete — it
    /// is the baseline every degradation is measured against.
    pub scenarios: Vec<String>,
    /// `values[row][col]` = mean last delay `d̂` of `algs[col]` under
    /// `scenarios[row]` in seconds, or `None` when the algorithm could not
    /// finish under the scenario.
    pub values: Vec<Vec<Option<f64>>>,
    /// Provenance: `statically_decided[row][col]` is `true` when the cell
    /// was settled by `pap-lint`'s static crash cone (no simulator run).
    /// Empty for matrices persisted before the static prefilter existed.
    #[serde(default)]
    pub statically_decided: Vec<Vec<bool>>,
    /// `pap_microbench::FAULT_GRID_VERSION` of the sweep that produced the
    /// matrix; `0` for evidence persisted before grids were versioned.
    /// Mismatched versions must be re-measured, not compared.
    #[serde(default)]
    pub grid_version: u32,
}

impl FaultMatrix {
    /// Assemble from a fault sweep.
    ///
    /// # Panics
    /// Panics if the sweep grid is incomplete or has no complete `clean`
    /// row (a baseline that crashed measures nothing).
    pub fn from_fault_sweep(sweep: &FaultSweepResult) -> Self {
        let cell = |a: u8, s: &String| {
            sweep.cell(a, s).unwrap_or_else(|| panic!("missing fault cell ({a}, {s})"))
        };
        let values: Vec<Vec<Option<f64>>> = sweep
            .scenarios
            .iter()
            .map(|s| sweep.algs.iter().map(|&a| cell(a, s).mean_last).collect())
            .collect();
        let statically_decided: Vec<Vec<bool>> = sweep
            .scenarios
            .iter()
            .map(|s| sweep.algs.iter().map(|&a| cell(a, s).statically_decided).collect())
            .collect();
        let m = FaultMatrix {
            kind: sweep.kind,
            bytes: sweep.bytes,
            algs: sweep.algs.clone(),
            scenarios: sweep.scenarios.clone(),
            values,
            statically_decided,
            grid_version: sweep.grid_version,
        };
        let clean = m.scenario_index("clean").expect("fault matrix needs a clean row");
        assert!(
            m.values[clean].iter().all(Option::is_some),
            "clean row must be complete (an algorithm that fails without faults measures nothing)"
        );
        m
    }

    /// Index of a scenario row.
    pub fn scenario_index(&self, scenario: &str) -> Option<usize> {
        self.scenarios.iter().position(|s| s == scenario)
    }

    /// Index of an algorithm column.
    pub fn alg_index(&self, alg: u8) -> Option<usize> {
        self.algs.iter().position(|&a| a == alg)
    }

    /// Per-cell degradation `d̂_scenario/d̂_clean − 1` (the Fig. 6 metric
    /// with the clean run as baseline). `None` where the algorithm never
    /// finished. Returns `None` if there is no `clean` row.
    pub fn degradation(&self) -> Option<Vec<Vec<Option<f64>>>> {
        let clean = self.scenario_index("clean")?;
        Some(
            self.values
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(c, v)| {
                            let base = self.values[clean][c]?;
                            Some((*v)? / base - 1.0)
                        })
                        .collect()
                })
                .collect(),
        )
    }

    /// Per-algorithm worst-case degradation over the *discriminating*
    /// scenarios; `f64::INFINITY` where such a scenario starved the
    /// algorithm. This is the quantity the fault-robust policy bounds.
    ///
    /// A scenario that starves **every** algorithm (e.g. an entry crash
    /// under a rooted reduction — no schedule survives losing a
    /// contributor) is excluded: there is nothing to route around, so it
    /// carries no signal and must not drown the scenarios where the choice
    /// of algorithm actually matters.
    pub fn worst_case_degradation(&self) -> Option<Vec<f64>> {
        let deg = self.degradation()?;
        Some(
            (0..self.algs.len())
                .map(|c| {
                    deg.iter()
                        .filter(|row| row.iter().any(Option::is_some))
                        .map(|row| row[c].unwrap_or(f64::INFINITY))
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .collect(),
        )
    }

    /// Scenarios (beyond `clean`) on which `alg` finished.
    pub fn survived(&self, alg: u8) -> Vec<&str> {
        let Some(c) = self.alg_index(alg) else { return Vec::new() };
        self.scenarios
            .iter()
            .zip(&self.values)
            .filter(|(s, row)| s.as_str() != "clean" && row[c].is_some())
            .map(|(s, _)| s.as_str())
            .collect()
    }
}

/// Fault-robust selection: among algorithms whose worst-case degradation
/// stays within `max_degradation` (e.g. `1.0` = at most 2× slower under
/// any scenario), pick the one fastest on the clean row. When no algorithm
/// qualifies, fall back to minimax — the smallest worst-case degradation,
/// clean runtime as tie-break. Errors when the matrix lacks a clean row.
pub fn select_fault_robust(m: &FaultMatrix, max_degradation: f64) -> Result<u8, String> {
    let clean = m
        .scenario_index("clean")
        .ok_or_else(|| "fault matrix has no clean row".to_string())?;
    let worst = m
        .worst_case_degradation()
        .ok_or_else(|| "fault matrix has no clean row".to_string())?;
    if m.algs.is_empty() {
        return Err("empty fault matrix".to_string());
    }
    let clean_time = |c: usize| m.values[clean][c].unwrap_or(f64::INFINITY);
    let bounded: Vec<usize> =
        (0..m.algs.len()).filter(|&c| worst[c] <= max_degradation).collect();
    let pick = if bounded.is_empty() {
        // Minimax fallback: nothing is bounded, limit the damage.
        (0..m.algs.len())
            .min_by(|&a, &b| {
                worst[a]
                    .total_cmp(&worst[b])
                    .then(clean_time(a).total_cmp(&clean_time(b)))
            })
            .expect("non-empty")
    } else {
        bounded
            .into_iter()
            .min_by(|&a, &b| clean_time(a).total_cmp(&clean_time(b)))
            .expect("non-empty")
    };
    Ok(m.algs[pick])
}

/// Fig. 6-style rendering of the fault grid: degradation per cell with `#`
/// marking cells beyond `threshold` and `X` marking starved cells (shown
/// as `inf`).
pub fn render_fault_table(m: &FaultMatrix, threshold: f64) -> Option<String> {
    let deg = m.degradation()?;
    let col_names: Vec<String> = m.algs.iter().map(|a| format!("A{a}")).collect();
    let numeric: Vec<Vec<f64>> =
        deg.iter().map(|row| row.iter().map(|v| v.unwrap_or(f64::INFINITY)).collect()).collect();
    Some(render_table(
        &format!(
            "{} {} B — fault degradation (d̂_fault/d̂_clean − 1; #:≥{:.0}% slower, X: never finished)",
            m.kind,
            m.bytes,
            threshold * 100.0
        ),
        &col_names,
        &m.scenarios,
        &numeric,
        |v| if v.is_finite() { format!("{v:+.3}") } else { "inf".to_string() },
        |r, c| match deg[r][c] {
            None => 'X',
            Some(v) if v >= threshold => '#',
            _ => ' ',
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FaultMatrix {
        FaultMatrix {
            kind: CollectiveKind::Reduce,
            bytes: 1024,
            algs: vec![1, 2, 3],
            scenarios: vec!["clean".into(), "stall_root".into(), "crash_leaf".into()],
            values: vec![
                // Alg 1: fastest clean, dies under crash. Alg 2: slower
                // clean, survives everything within bounds. Alg 3:
                // survives but degrades badly under stall.
                vec![Some(1.0), Some(1.5), Some(2.0)],
                vec![Some(1.8), Some(2.0), Some(7.0)],
                vec![None, Some(1.8), Some(2.4)],
            ],
            statically_decided: Vec::new(),
            grid_version: 0,
        }
    }

    #[test]
    fn degradation_uses_clean_baseline() {
        let d = matrix().degradation().unwrap();
        assert!(d[0].iter().all(|v| v.unwrap().abs() < 1e-12), "clean row is all zeros");
        assert!((d[1][0].unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(d[2][0], None, "starved cell stays None");
    }

    #[test]
    fn worst_case_is_infinite_for_starved_algorithms() {
        let w = matrix().worst_case_degradation().unwrap();
        assert_eq!(w[0], f64::INFINITY);
        assert!((w[1] - 0.3333333333333333).abs() < 1e-9, "{w:?}");
        assert!((w[2] - 2.5).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn all_starved_scenarios_do_not_drown_the_worst_case() {
        // An entry crash that kills every schedule (v2 grid semantics on a
        // rooted reduction) carries no signal: with the row counted,
        // every algorithm's worst case would be inf and minimax would
        // degenerate to the clean winner.
        let mut m = matrix();
        m.scenarios.push("crash_all".into());
        m.values.push(vec![None, None, None]);
        let w = m.worst_case_degradation().unwrap();
        assert_eq!(w[0], f64::INFINITY, "starving a survivable scenario still counts");
        assert!(w[1].is_finite() && w[2].is_finite(), "{w:?}");
        assert_eq!(select_fault_robust(&m, 1.0).unwrap(), 2);
    }

    #[test]
    fn fault_robust_bounds_worst_case_then_prefers_clean_speed() {
        let m = matrix();
        // Bound 1.0: only alg 2 qualifies (alg 1 starves, alg 3 degrades
        // 2.5×) — the status-quo clean winner (alg 1) is overruled.
        assert_eq!(select_fault_robust(&m, 1.0).unwrap(), 2);
        // Generous bound 3.0: algs 2 and 3 qualify; alg 2 is faster clean.
        assert_eq!(select_fault_robust(&m, 3.0).unwrap(), 2);
    }

    #[test]
    fn fault_robust_falls_back_to_minimax() {
        // Impossible bound: nothing qualifies; minimax picks alg 2 (worst
        // case 0.33 beats 2.5 and inf).
        assert_eq!(select_fault_robust(&matrix(), 0.01).unwrap(), 2);
    }

    #[test]
    fn survived_lists_non_clean_scenarios() {
        let m = matrix();
        assert_eq!(m.survived(1), vec!["stall_root"]);
        assert_eq!(m.survived(2), vec!["stall_root", "crash_leaf"]);
    }

    #[test]
    fn render_marks_starved_and_degraded_cells() {
        let s = render_fault_table(&matrix(), 0.5).unwrap();
        assert!(s.contains('X'), "{s}");
        assert!(s.contains('#'), "{s}");
        assert!(s.contains("inf"), "{s}");
        assert!(s.contains("stall_root"));
    }
}
