//! Persistent tuning tables — the artifact an MPI library's decision logic
//! consumes (keyed by machine, collective, process count, message size).

use pap_collectives::CollectiveKind;
use serde::{Deserialize, Serialize};

/// One tuning decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningEntry {
    /// Machine name the decision was tuned on.
    pub machine: String,
    /// Collective.
    pub kind: CollectiveKind,
    /// Process count.
    pub ranks: usize,
    /// Message size the benchmark used (bytes, collective convention).
    pub bytes: u64,
    /// Chosen algorithm ID.
    pub alg: u8,
    /// Name of the policy that produced the choice (provenance).
    pub policy: String,
}

/// A set of tuning decisions with nearest-size lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TuningTable {
    /// All entries.
    pub entries: Vec<TuningEntry>,
}

impl TuningTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a decision for an exact key.
    pub fn insert(&mut self, entry: TuningEntry) {
        self.entries.retain(|e| {
            !(e.machine == entry.machine && e.kind == entry.kind && e.ranks == entry.ranks && e.bytes == entry.bytes)
        });
        self.entries.push(entry);
    }

    /// Look up the decision for a message size: exact (machine, kind,
    /// ranks) match, then the entry whose benchmark size is nearest in
    /// log-space (how MPI decision maps interpolate between tuning points).
    pub fn lookup(&self, machine: &str, kind: CollectiveKind, ranks: usize, bytes: u64) -> Option<&TuningEntry> {
        self.entries
            .iter()
            .filter(|e| e.machine == machine && e.kind == kind && e.ranks == ranks)
            .min_by(|a, b| {
                let d = |e: &TuningEntry| {
                    ((e.bytes.max(1) as f64).ln() - (bytes.max(1) as f64).ln()).abs()
                };
                d(a).partial_cmp(&d(b)).expect("finite distances")
            })
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tuning tables are serializable")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bytes: u64, alg: u8) -> TuningEntry {
        TuningEntry {
            machine: "Hydra".into(),
            kind: CollectiveKind::Alltoall,
            ranks: 1024,
            bytes,
            alg,
            policy: "robust".into(),
        }
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut t = TuningTable::new();
        t.insert(entry(1024, 1));
        t.insert(entry(1024, 3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("Hydra", CollectiveKind::Alltoall, 1024, 1024).unwrap().alg, 3);
    }

    #[test]
    fn nearest_log_size_lookup() {
        let mut t = TuningTable::new();
        t.insert(entry(8, 1));
        t.insert(entry(32 * 1024, 2));
        t.insert(entry(1 << 20, 3));
        let get = |b: u64| t.lookup("Hydra", CollectiveKind::Alltoall, 1024, b).unwrap().alg;
        assert_eq!(get(8), 1);
        assert_eq!(get(64), 1);
        assert_eq!(get(16 * 1024), 2);
        assert_eq!(get(100 * 1024), 2);
        assert_eq!(get(1 << 21), 3);
    }

    #[test]
    fn lookup_respects_machine_kind_and_ranks() {
        let mut t = TuningTable::new();
        t.insert(entry(1024, 1));
        assert!(t.lookup("Galileo100", CollectiveKind::Alltoall, 1024, 1024).is_none());
        assert!(t.lookup("Hydra", CollectiveKind::Reduce, 1024, 1024).is_none());
        assert!(t.lookup("Hydra", CollectiveKind::Alltoall, 512, 1024).is_none());
    }

    #[test]
    fn json_round_trip() {
        let mut t = TuningTable::new();
        t.insert(entry(8, 1));
        t.insert(entry(1024, 4));
        let back = TuningTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup("Hydra", CollectiveKind::Alltoall, 1024, 8).unwrap().alg, 1);
        assert!(TuningTable::from_json("not json").is_err());
    }
}
