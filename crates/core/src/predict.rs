//! Application runtime projection (Fig. 9): compute time plus the expected
//! collective time, under the No-delay estimate vs. the pattern-averaged
//! estimate.

use serde::{Deserialize, Serialize};

/// Projected vs. actual application runtime for one collective algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppPrediction {
    /// Measured application runtime.
    pub actual: f64,
    /// `compute + calls × d̂(no_delay)` — the projection a conventional
    /// micro-benchmark supports.
    pub predicted_no_delay: f64,
    /// `compute + calls × mean_k d̂(pattern_k)` — the projection using the
    /// pattern-averaged collective time (§V-C).
    pub predicted_avg: f64,
}

impl AppPrediction {
    /// Relative error of the No-delay projection.
    pub fn error_no_delay(&self) -> f64 {
        (self.predicted_no_delay - self.actual).abs() / self.actual
    }

    /// Relative error of the pattern-averaged projection.
    pub fn error_avg(&self) -> f64 {
        (self.predicted_avg - self.actual).abs() / self.actual
    }
}

/// Build a projection from profile data.
///
/// * `actual` — measured application runtime (e.g. the `pap-apps` FT report).
/// * `compute` — extracted computation time (mpisee-style profile).
/// * `calls` — number of collective calls.
/// * `no_delay_time` — the collective's `d̂` in the synchronized
///   micro-benchmark.
/// * `avg_time` — the collective's `d̂` averaged over the arrival-pattern
///   suite (excluding any held-out application pattern).
pub fn predict_app_runtime(
    actual: f64,
    compute: f64,
    calls: usize,
    no_delay_time: f64,
    avg_time: f64,
) -> AppPrediction {
    AppPrediction {
        actual,
        predicted_no_delay: compute + calls as f64 * no_delay_time,
        predicted_avg: compute + calls as f64 * avg_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_arithmetic() {
        let p = predict_app_runtime(10.0, 4.0, 10, 0.3, 0.55);
        assert!((p.predicted_no_delay - 7.0).abs() < 1e-12);
        assert!((p.predicted_avg - 9.5).abs() < 1e-12);
        assert!(p.error_avg() < p.error_no_delay());
    }

    #[test]
    fn errors_are_relative() {
        let p = AppPrediction { actual: 2.0, predicted_no_delay: 1.0, predicted_avg: 2.2 };
        assert!((p.error_no_delay() - 0.5).abs() < 1e-12);
        assert!((p.error_avg() - 0.1).abs() < 1e-12);
    }
}
