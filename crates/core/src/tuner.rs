//! End-to-end tuner: benchmark a machine across collectives and message
//! sizes, apply a selection policy, and emit the tuning table an MPI
//! library's decision logic would consume.

use pap_arrival::Shape;
use pap_collectives::registry::experiment_ids;
use pap_collectives::CollectiveKind;
use pap_microbench::{sweep, BenchConfig, SkewPolicy, SweepResult};
use pap_sim::Platform;

use crate::matrix::BenchMatrix;
use crate::selection::{select, SelectionPolicy};
use crate::table::{TuningEntry, TuningTable};

/// What to tune.
#[derive(Debug, Clone)]
pub struct TunePlan {
    /// Collectives to tune (default: the paper's three).
    pub kinds: Vec<CollectiveKind>,
    /// Message sizes per collective (collective byte convention).
    pub sizes: Vec<u64>,
    /// Arrival patterns to benchmark under.
    pub shapes: Vec<Shape>,
    /// Skew calibration policy (§III-B / §IV-C).
    pub skew: SkewPolicy,
    /// Selection policy applied to each matrix.
    pub policy: SelectionPolicy,
}

impl Default for TunePlan {
    fn default() -> Self {
        TunePlan {
            kinds: CollectiveKind::PAPER.to_vec(),
            sizes: vec![8, 1024, 32 * 1024, 1 << 20],
            shapes: Shape::SUITE.to_vec(),
            skew: SkewPolicy::FactorOfAvg(1.0),
            policy: SelectionPolicy::robust(),
        }
    }
}

/// One tuned cell with its full evidence.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// The decision.
    pub entry: TuningEntry,
    /// The benchmark matrix the decision was made from.
    pub matrix: BenchMatrix,
    /// What the status-quo (No-delay) policy would have picked instead.
    pub status_quo: u8,
}

/// Run the plan: one sweep per (collective, size), one decision each.
///
/// The (collective × size) grid fans out over [`pap_parallel::par_map`];
/// each cell's inner sweep then runs sequentially inside its worker, so
/// total parallelism stays bounded by the thread knob. Results come back
/// in grid order, identical to the sequential loop.
///
/// Returns the tuning table and the per-cell evidence. Errors from the
/// harness are propagated with the offending cell named.
pub fn tune_machine(
    platform: &Platform,
    plan: &TunePlan,
    cfg: &BenchConfig,
) -> Result<(TuningTable, Vec<TuneRecord>), String> {
    let mut grid: Vec<(CollectiveKind, u64)> = Vec::new();
    for &kind in &plan.kinds {
        for &bytes in &plan.sizes {
            grid.push((kind, bytes));
        }
    }
    let tuned = pap_parallel::par_map(&grid, |_, &(kind, bytes)| {
        let algs = experiment_ids(kind);
        let sw: SweepResult = sweep(platform, kind, &algs, &plan.shapes, bytes, plan.skew, &[], cfg)
            .map_err(|e| format!("{kind} @ {bytes} B: {e}"))?;
        let matrix = BenchMatrix::from_sweep(&sw);
        let alg = select(&matrix, &plan.policy)?;
        let status_quo = select(&matrix, &SelectionPolicy::NoDelayFastest)?;
        let entry = TuningEntry {
            machine: platform.machine.name().to_string(),
            kind,
            ranks: platform.ranks,
            bytes,
            alg,
            policy: format!("{:?}", plan.policy),
        };
        Ok::<_, String>(TuneRecord { entry, matrix, status_quo })
    });

    let mut table = TuningTable::new();
    let mut records = Vec::new();
    for rec in tuned {
        let rec = rec?;
        table.insert(rec.entry.clone());
        records.push(rec);
    }
    Ok((table, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunes_a_small_machine() {
        let platform = Platform::simcluster(16);
        let plan = TunePlan {
            sizes: vec![64, 4096],
            shapes: vec![Shape::NoDelay, Shape::Ascending, Shape::LastDelayed],
            ..TunePlan::default()
        };
        let (table, records) = tune_machine(&platform, &plan, &BenchConfig::simulation()).unwrap();
        assert_eq!(table.len(), 3 * 2);
        assert_eq!(records.len(), 6);
        for rec in &records {
            assert!(rec.matrix.algs.contains(&rec.entry.alg));
            // The decision is reachable through the lookup API.
            let hit = table
                .lookup("SimCluster", rec.entry.kind, 16, rec.entry.bytes)
                .expect("lookup");
            assert_eq!(hit.alg, rec.entry.alg);
        }
    }

    #[test]
    fn robust_pick_never_worse_on_average_and_potential_exists() {
        let platform = Platform::simcluster(64);
        let plan = TunePlan {
            kinds: vec![CollectiveKind::Reduce, CollectiveKind::Alltoall],
            sizes: vec![8, 1024, 32 * 1024],
            skew: SkewPolicy::FactorOfAvg(1.5),
            ..TunePlan::default()
        };
        let (_, records) = tune_machine(&platform, &plan, &BenchConfig::simulation()).unwrap();
        let mut per_pattern_shift = 0;
        for rec in &records {
            // The robust pick is at least as good as the status quo on the
            // pattern-averaged metric (the policy's defining property).
            let avg = rec.matrix.avg_normalized(&[]);
            let idx = |a: u8| rec.matrix.alg_index(a).unwrap();
            assert!(avg[idx(rec.entry.alg)] <= avg[idx(rec.status_quo)] + 1e-12);
            // Optimization potential: the per-pattern winner differs from
            // the No-delay winner somewhere.
            let nd = rec.matrix.best_in("no_delay").unwrap();
            if rec.matrix.patterns.iter().any(|p| rec.matrix.best_in(p).unwrap() != nd) {
                per_pattern_shift += 1;
            }
        }
        assert!(per_pattern_shift > 0, "no matrix showed any per-pattern optimum shift");
    }
}
