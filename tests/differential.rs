//! Differential cross-validation of the analytical backend (`pap-model`)
//! against the event-driven simulator on the paper's Fig. 4 grid:
//! SimCluster, 64 ranks, the three paper collectives with their experiment
//! algorithm sets, sizes {8 B, 1 KiB, 32 KiB}, all nine arrival shapes,
//! skew = 1.5 × calibrated mean runtime.
//!
//! Selection only consumes *rankings*, so the acceptance bar is rank
//! correlation (Spearman ≥ 0.8 per (collective, pattern) cell), with a
//! looser magnitude bound as a sanity net. A golden fixture in
//! `results/model_vs_sim_fig4.json` pins the orderings; regenerate it with
//! `PAP_UPDATE_FIXTURES=1 cargo test --release --test differential`.

use std::sync::OnceLock;

use pap::arrival::Shape;
use pap::collectives::registry::experiment_ids;
use pap::collectives::CollectiveKind;
use pap::core::{differential_grid, DiffCell};
use pap::microbench::BenchConfig;
use pap::sim::Platform;

const RANKS: usize = 64;
const SIZES: [u64; 3] = [8, 1024, 32768];
const SKEW_FACTOR: f64 = 1.5;

/// The Fig. 4 grid, computed once and shared by every test in this file.
fn grid() -> &'static [DiffCell] {
    static GRID: OnceLock<Vec<DiffCell>> = OnceLock::new();
    GRID.get_or_init(|| {
        let platform = Platform::simcluster(RANKS);
        let cfg = BenchConfig::simulation();
        let mut cells = Vec::new();
        for kind in CollectiveKind::PAPER {
            let algs = experiment_ids(kind);
            cells.extend(
                differential_grid(
                    &platform,
                    kind,
                    &algs,
                    &SIZES,
                    &Shape::SUITE,
                    SKEW_FACTOR,
                    &cfg,
                )
                .expect("differential grid"),
            );
        }
        cells
    })
}

/// The tentpole acceptance criterion: the model reproduces the simulator's
/// ranking of (algorithm, size) pairs in every (collective, pattern) cell.
#[test]
fn fig4_model_ranks_match_simulator() {
    let mut violations = Vec::new();
    for c in grid() {
        eprintln!(
            "{} / {:<14} spearman {:+.4} kendall {:+.4} med-rel {:.3} max-rel {:.3}",
            c.kind, c.pattern, c.spearman, c.kendall, c.median_rel_err, c.max_rel_err
        );
        if c.spearman < 0.8 {
            violations.push(format!(
                "({}, {}): spearman {:.4} < 0.8\n  sim:   {:?}\n  model: {:?}",
                c.kind, c.pattern, c.spearman, c.sim_order, c.model_order
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "model/sim rank disagreement on the Fig. 4 grid:\n{}",
        violations.join("\n")
    );
}

/// Magnitude sanity net: the model is allowed to be off in absolute terms
/// (it resolves NIC contention in schedule order, not timestamp order), but
/// the typical (algorithm, size) pair of every cell must track the
/// simulator closely. The *max* bound is deliberately loose: on shapes
/// where the straggler arrives after everyone else finished helping, the
/// simulator's d̂ approaches the straggler's solo work and relative error
/// on that near-zero baseline blows up without the ranking being wrong
/// (measured worst case ≈ 30 on the seed grid).
#[test]
fn fig4_model_magnitudes_bounded() {
    let mut violations = Vec::new();
    for c in grid() {
        if c.median_rel_err > 0.25 {
            violations.push(format!(
                "({}, {}): median relative error {:.3} > 0.25",
                c.kind, c.pattern, c.median_rel_err
            ));
        }
        if c.max_rel_err > 50.0 {
            violations.push(format!(
                "({}, {}): max relative error {:.3} > 50",
                c.kind, c.pattern, c.max_rel_err
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "model magnitudes drifted from the simulator:\n{}",
        violations.join("\n")
    );
}

/// Golden-fixture regression: the per-cell orderings and (rounded)
/// correlations on the Fig. 4 grid are pinned in `results/`. Any cost-model
/// or simulator change that shifts a ranking shows up as a readable JSON
/// diff. Set `PAP_UPDATE_FIXTURES=1` to regenerate after an intentional
/// change.
#[test]
fn fig4_fixture_is_current() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/model_vs_sim_fig4.json");
    let current = fixture(grid());
    if std::env::var("PAP_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        let pretty = serde_json::to_string_pretty(&current).unwrap();
        std::fs::write(path, pretty + "\n").unwrap();
        return;
    }
    let stored: Fixture = serde_json::from_str(
        &std::fs::read_to_string(path).expect(
            "missing results/model_vs_sim_fig4.json — generate it with \
             PAP_UPDATE_FIXTURES=1 cargo test --release --test differential",
        ),
    )
    .unwrap();
    assert_eq!(
        stored, current,
        "Fig. 4 model-vs-sim fixture is stale; if the ranking change is \
         intentional, regenerate with PAP_UPDATE_FIXTURES=1"
    );
}

/// The pinned payload: grid metadata plus, per cell, the two orderings and
/// correlations rounded to 4 decimals (full-precision floats would make the
/// fixture churn on any harmless arithmetic reordering).
#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct Fixture {
    platform: String,
    ranks: usize,
    sizes: Vec<u64>,
    skew_factor: f64,
    cells: Vec<FixtureCell>,
}

#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct FixtureCell {
    kind: String,
    pattern: String,
    spearman: f64,
    kendall: f64,
    median_rel_err: f64,
    sim_order: Vec<String>,
    model_order: Vec<String>,
}

fn fixture(cells: &[DiffCell]) -> Fixture {
    fn r4(x: f64) -> f64 {
        (x * 1e4).round() / 1e4
    }
    Fixture {
        platform: "SimCluster".into(),
        ranks: RANKS,
        sizes: SIZES.to_vec(),
        skew_factor: SKEW_FACTOR,
        cells: cells
            .iter()
            .map(|c| FixtureCell {
                kind: c.kind.name().into(),
                pattern: c.pattern.clone(),
                spearman: r4(c.spearman),
                kendall: r4(c.kendall),
                median_rel_err: r4(c.median_rel_err),
                sim_order: c.sim_order.clone(),
                model_order: c.model_order.clone(),
            })
            .collect(),
    }
}
