//! Directional tests encoding the paper's headline claims. These do not pin
//! absolute numbers (the substrate is a simulator); they assert the *shape*
//! of the results: who wins, in which direction effects point, where the
//! sensitivities are.

use pap::arrival::{generate, Shape};
use pap::collectives::registry::experiment_ids;
use pap::collectives::{CollSpec, CollectiveKind};
use pap::core::{select, BenchMatrix, SelectionPolicy};
use pap::microbench::{measure, sweep, BenchConfig, SkewPolicy};
use pap::sim::Platform;

const P: usize = 64;

fn sim_cfg() -> BenchConfig {
    BenchConfig::simulation()
}

fn pat(shape: Shape, skew: f64) -> pap::arrival::ArrivalPattern {
    generate(shape, P, skew, 3)
}

/// §III-C / Fig. 4a: rooted collectives (Reduce) are sensitive to arrival
/// patterns — the best algorithm changes between No-delay and LastDelayed.
#[test]
fn reduce_optimum_shifts_with_arrival_pattern() {
    let platform = Platform::simcluster(P);
    let algs = experiment_ids(CollectiveKind::Reduce);
    let sw = sweep(
        &platform,
        CollectiveKind::Reduce,
        &algs,
        &[Shape::NoDelay, Shape::LastDelayed, Shape::Ascending],
        1024,
        SkewPolicy::FactorOfAvg(1.5),
        &[],
        &sim_cfg(),
    )
    .unwrap();
    let m = BenchMatrix::from_sweep(&sw);
    let nd = m.best_in("no_delay").unwrap();
    let ld = m.best_in("last_delayed").unwrap();
    assert_ne!(nd, ld, "Reduce optimum should shift under LastDelayed (paper Fig. 4a)");
}

/// Fig. 4a / Fig. 5a: the binomial tree is hurt by a delayed last process;
/// the in-order binary tree (rooted at the last rank) absorbs that skew.
#[test]
fn in_order_binary_absorbs_last_delayed_better_than_binomial() {
    let platform = Platform::simcluster(P);
    let skew = 1e-3;
    let p = pat(Shape::LastDelayed, skew);
    let binom = measure(&platform, &CollSpec::new(CollectiveKind::Reduce, 5, 64), &p, &sim_cfg()).unwrap();
    let inbin = measure(&platform, &CollSpec::new(CollectiveKind::Reduce, 6, 64), &p, &sim_cfg()).unwrap();
    assert!(
        inbin.mean_last() * 2.0 < binom.mean_last(),
        "expected in-order binary ({:.2e}) to absorb the skew that binomial ({:.2e}) cannot",
        inbin.mean_last(),
        binom.mean_last()
    );
}

/// §III-C / Fig. 5b: Allreduce is robust — the No-delay winner stays within
/// the near-best set under every arrival pattern (the reduction step
/// synchronizes anyway).
#[test]
fn allreduce_no_delay_winner_stays_competitive() {
    let platform = Platform::simcluster(P);
    let algs = experiment_ids(CollectiveKind::Allreduce);
    let sw = sweep(
        &platform,
        CollectiveKind::Allreduce,
        &algs,
        &Shape::SUITE,
        1024,
        SkewPolicy::FactorOfAvg(1.5),
        &[],
        &sim_cfg(),
    )
    .unwrap();
    let m = BenchMatrix::from_sweep(&sw);
    let nd_winner = m.best_in("no_delay").unwrap();
    for shape in Shape::SUITE {
        let good = m.good_set(shape.name(), 0.30).unwrap();
        assert!(
            good.contains(&nd_winner),
            "{}: No-delay winner A{nd_winner} fell out of the near-best set {good:?}",
            shape.name()
        );
    }
}

/// Classic algorithm theory the simulator must reproduce: Bruck wins
/// small-message Alltoall at scale (log p rounds beat p per-message
/// overheads), but loses at large messages (it moves log p/2 times the
/// data).
#[test]
fn bruck_wins_small_messages_loses_large() {
    // Needs enough ranks that per-message software costs dominate log(p)
    // round trips; Hydra's bandwidth keeps Bruck's extra volume cheap.
    let big_p = 256;
    let platform = Platform::hydra(big_p);
    let nodelay = generate(Shape::NoDelay, big_p, 0.0, 0);
    let time = |alg: u8, bytes: u64| {
        measure(&platform, &CollSpec::new(CollectiveKind::Alltoall, alg, bytes), &nodelay, &sim_cfg())
            .unwrap()
            .mean_last()
    };
    assert!(time(3, 8) < time(1, 8), "Bruck should win 8 B alltoall at p={big_p}");
    assert!(time(3, 64 * 1024) > time(1, 64 * 1024), "Bruck should lose 64 KiB alltoall");
}

/// Eq. 1 / Eq. 2: the last delay never exceeds the total delay, and with a
/// large skew the total delay contains the skew while the last delay does
/// not.
#[test]
fn delay_metrics_relate_as_defined() {
    let platform = Platform::simcluster(P);
    let skew = 50e-3;
    let p = pat(Shape::Descending, skew);
    let st = measure(&platform, &CollSpec::new(CollectiveKind::Bcast, 5, 1024), &p, &sim_cfg()).unwrap();
    for m in &st.reps {
        assert!(m.last_delay <= m.total_delay);
    }
    assert!(st.mean_total() > skew * 0.9, "d* must contain the skew");
    assert!(st.mean_last() < skew * 0.5, "d̂ must not");
}

/// §V-C: on at least one machine/scenario, the robust selection differs
/// from the No-delay selection — the whole reason the paper proposes it.
/// (Uses a Reduce scenario where the effect is strongest.)
#[test]
fn robust_selection_can_disagree_with_no_delay_selection() {
    let platform = Platform::simcluster(P);
    let algs = experiment_ids(CollectiveKind::Reduce);
    let sw = sweep(
        &platform,
        CollectiveKind::Reduce,
        &algs,
        &Shape::SUITE,
        8,
        SkewPolicy::FactorOfAvg(1.5),
        &[],
        &sim_cfg(),
    )
    .unwrap();
    let m = BenchMatrix::from_sweep(&sw);
    let nd = select(&m, &SelectionPolicy::NoDelayFastest).unwrap();
    let robust = select(&m, &SelectionPolicy::robust()).unwrap();
    // The robust pick is at least as good as the No-delay pick on the
    // pattern-averaged metric (by construction of the policy)...
    let avg = m.avg_normalized(&[]);
    let idx = |a: u8| m.alg_index(a).unwrap();
    assert!(avg[idx(robust)] <= avg[idx(nd)]);
    // ...and the optimization potential the paper reports exists: under
    // some pattern, the No-delay winner is far from that pattern's best.
    let worst_ratio = m
        .patterns
        .iter()
        .map(|p| m.value(p, nd).unwrap() / m.values[m.pattern_index(p).unwrap()].iter().copied().fold(f64::INFINITY, f64::min))
        .fold(0.0f64, f64::max);
    assert!(
        worst_ratio > 1.5,
        "No-delay winner A{nd} should be ≥1.5x off optimal under some pattern, worst ratio {worst_ratio:.2}"
    );
}

/// Skew-magnitude calibration (§III-B): the total delay d* grows with the
/// injected skew, while the last delay d̂ *saturates* — once the skew
/// dominates, only the post-arrival critical path remains. This asymmetry
/// is exactly why the paper optimizes d̂.
#[test]
fn d_star_grows_with_skew_while_d_hat_saturates() {
    let platform = Platform::simcluster(P);
    let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
    let nodelay = measure(&platform, &spec, &pat(Shape::NoDelay, 0.0), &sim_cfg()).unwrap();
    let small = measure(&platform, &spec, &pat(Shape::LastDelayed, 0.5 * nodelay.mean_last()), &sim_cfg())
        .unwrap();
    let large = measure(&platform, &spec, &pat(Shape::LastDelayed, 10.0 * nodelay.mean_last()), &sim_cfg())
        .unwrap();
    assert!(large.mean_total() > small.mean_total() * 2.0, "d* must track the skew");
    assert!(
        large.mean_last() < nodelay.mean_last() * 3.0,
        "d̂ must saturate at the post-arrival critical path: {} vs no-delay {}",
        large.mean_last(),
        nodelay.mean_last()
    );
}

/// Analytical anchor for the d̂ saturation floor: under a skew far larger
/// than the collective itself, linear Alltoall's last delay converges to
/// the *last rank's own software cost* — (p-1)·(o_s + o_r) of request
/// posting — because every other rank has long finished posting and the
/// wire is idle. (This explains the constant-valued cells in Fig. 5c.)
#[test]
fn linear_alltoall_d_hat_floor_is_posting_cost() {
    let p = 64;
    let platform = Platform::hydra(p);
    let spec = CollSpec::new(CollectiveKind::Alltoall, 1, 8);
    let mut cfg = sim_cfg();
    cfg.noise = Some(pap::sim::NoiseModel::None);
    let huge = generate(Shape::LastDelayed, p, 50e-3, 0);
    let st = measure(&platform, &spec, &huge, &cfg).unwrap();
    let floor = (p - 1) as f64 * (platform.send_overhead + platform.recv_overhead);
    let d = st.mean_last();
    assert!(
        d >= floor && d < floor * 2.0,
        "d̂ {d:.2e} should sit just above the posting floor {floor:.2e}"
    );
}
