//! Property-based tests over the collective algorithms and the simulator:
//! for *arbitrary* parameters, schedules must complete (no deadlock), move
//! correct data, and respect the metric invariants.

use pap::arrival::{generate, Shape};
use pap::collectives::registry::{algorithms, experiment_ids};
use pap::collectives::{build, verify, CollSpec, CollectiveKind};
use pap::microbench::{measure, BenchConfig};
use pap::sim::{run, Job, NoiseModel, Platform, RankProgram, SimConfig};
use proptest::prelude::*;

fn kinds() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::Reduce),
        Just(CollectiveKind::Allreduce),
        Just(CollectiveKind::Alltoall),
        Just(CollectiveKind::Bcast),
        Just(CollectiveKind::Barrier),
        Just(CollectiveKind::Gather),
        Just(CollectiveKind::Scatter),
        Just(CollectiveKind::Allgather),
    ]
}

/// Every collective kind, for the deterministic exhaustive sweeps below.
const ALL_KINDS: [CollectiveKind; 8] = [
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Alltoall,
    CollectiveKind::Bcast,
    CollectiveKind::Barrier,
    CollectiveKind::Gather,
    CollectiveKind::Scatter,
    CollectiveKind::Allgather,
];

fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::NoDelay),
        Just(Shape::Ascending),
        Just(Shape::Descending),
        Just(Shape::Random),
        Just(Shape::LastDelayed),
        Just(Shape::FirstDelayed),
        Just(Shape::VShape),
        Just(Shape::InvertedV),
        Just(Shape::HalfStep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any registered algorithm, any process count, any size/segment
    /// combination: the schedule completes and the dataflow is exactly the
    /// collective's semantics.
    #[test]
    fn any_collective_completes_and_verifies(
        kind in kinds(),
        alg_pick in 0usize..8,
        p in 1usize..26,
        bytes in prop_oneof![Just(0u64), 1u64..=200_000],
        seg_bytes in prop_oneof![Just(1024u64), Just(8192), Just(65536)],
        root in 0usize..26,
    ) {
        let algs = algorithms(kind);
        let alg = algs[alg_pick % algs.len()].id;
        let spec = CollSpec::new(kind, alg, bytes)
            .with_root(root % p)
            .with_seg_bytes(seg_bytes);
        let built = build(&spec, p).unwrap();
        let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
        let platform = Platform::simcluster(p);
        let out = run(&platform, Job::new(programs), &SimConfig::tracking()).unwrap();
        verify(&spec, p, &out).unwrap();
    }

    /// The metric invariants hold for every (algorithm, pattern, skew):
    /// 0 < d̂ ≤ d*, and both are finite.
    #[test]
    fn delay_metrics_invariants(
        kind in prop_oneof![
            Just(CollectiveKind::Reduce),
            Just(CollectiveKind::Allreduce),
            Just(CollectiveKind::Alltoall),
        ],
        alg_pick in 0usize..8,
        shape in shapes(),
        skew_us in 0.0f64..5_000.0,
        p in 2usize..20,
    ) {
        let algs = experiment_ids(kind);
        let alg = algs[alg_pick % algs.len()];
        let platform = Platform::simcluster(p);
        let pattern = generate(shape, p, skew_us * 1e-6, 11);
        let spec = CollSpec::new(kind, alg, 512);
        let stats = measure(&platform, &spec, &pattern, &BenchConfig::simulation()).unwrap();
        for m in &stats.reps {
            prop_assert!(m.last_delay.is_finite() && m.total_delay.is_finite());
            prop_assert!(m.last_delay > 0.0, "d̂ must be positive");
            prop_assert!(m.last_delay <= m.total_delay + 1e-12);
        }
    }

    /// Determinism: identical configuration ⇒ bit-identical measurement,
    /// even with noise and clock sync enabled.
    #[test]
    fn noisy_measurements_are_reproducible(
        seed in any::<u64>(),
        alg_pick in 0usize..4,
        shape in shapes(),
    ) {
        let p = 12;
        let algs = experiment_ids(CollectiveKind::Alltoall);
        let alg = algs[alg_pick % algs.len()];
        let platform = Platform::hydra(p);
        let pattern = generate(shape, p, 1e-4, seed);
        let spec = CollSpec::new(CollectiveKind::Alltoall, alg, 1024);
        let cfg = BenchConfig::real_machine(2).with_seed(seed);
        let a = measure(&platform, &spec, &pattern, &cfg).unwrap();
        let b = measure(&platform, &spec, &pattern, &cfg).unwrap();
        prop_assert_eq!(a.mean_last(), b.mean_last());
        prop_assert_eq!(a.mean_total(), b.mean_total());
    }

    /// Noise monotonicity sanity: adding an injected delay to every rank
    /// shifts completion but cannot make the collective finish earlier than
    /// the undelayed run (work conservation).
    #[test]
    fn uniform_delay_shifts_completion(
        delay_us in 1.0f64..10_000.0,
        alg_pick in 0usize..4,
    ) {
        let p = 8;
        let algs = experiment_ids(CollectiveKind::Alltoall);
        let alg = algs[alg_pick % algs.len()];
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Alltoall, alg, 256);
        let cfg = BenchConfig::simulation();
        let base = measure(&platform, &spec, &generate(Shape::NoDelay, p, 0.0, 0), &cfg).unwrap();
        // A uniform delay is NoDelay from the pattern's perspective except
        // time-shifted; d̂ must be identical.
        let mut delays = vec![delay_us * 1e-6; p];
        delays[0] = delay_us * 1e-6;
        let uniform = pap::arrival::ArrivalPattern::new("uniform", delays);
        let shifted = measure(&platform, &spec, &uniform, &cfg).unwrap();
        let rel = (shifted.mean_last() - base.mean_last()).abs() / base.mean_last();
        prop_assert!(rel < 1e-9, "uniform delay changed d̂ by {rel}");
    }
}

/// Deterministic companion to `any_collective_completes_and_verifies`:
/// proptest *samples* the parameter space, this sweeps the corner that has
/// historically broken collective implementations — non-power-of-two
/// process counts combined with **every** nonzero root — exhaustively for
/// every registered algorithm.
#[test]
fn every_algorithm_handles_awkward_p_and_all_roots() {
    for kind in ALL_KINDS {
        for a in algorithms(kind) {
            for p in [3usize, 6, 9] {
                for root in 0..p {
                    let spec = CollSpec::new(kind, a.id, 96).with_root(root);
                    let built = build(&spec, p)
                        .unwrap_or_else(|e| panic!("{kind} A{} p={p} root={root}: {e}", a.id));
                    let programs =
                        built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
                    let platform = Platform::simcluster(p);
                    let out = run(&platform, Job::new(programs), &SimConfig::tracking())
                        .unwrap_or_else(|e| panic!("{kind} A{} p={p} root={root}: {e}", a.id));
                    verify(&spec, p, &out)
                        .unwrap_or_else(|e| panic!("{kind} A{} p={p} root={root}: {e}", a.id));
                }
            }
        }
    }
}

/// Noise widens the distribution but keeps the ordering of clearly
/// separated algorithms (not a proptest: a fixed scenario with seeds).
#[test]
fn noise_preserves_clear_algorithm_ordering() {
    let p = 32;
    let platform = Platform::simcluster(p);
    let nodelay = generate(Shape::NoDelay, p, 0.0, 0);
    for seed in 0..5u64 {
        let cfg = BenchConfig {
            nrep: 3,
            noise: Some(NoiseModel::gaussian(0.05)),
            ..BenchConfig::simulation()
        }
        .with_seed(seed);
        // Bruck (3) vs linear (1) at 8 B: ~5x separated; noise must not flip.
        let bruck =
            measure(&platform, &CollSpec::new(CollectiveKind::Alltoall, 3, 8), &nodelay, &cfg).unwrap();
        let linear =
            measure(&platform, &CollSpec::new(CollectiveKind::Alltoall, 1, 8), &nodelay, &cfg).unwrap();
        assert!(bruck.mean_last() < linear.mean_last(), "seed {seed} flipped a 5x ordering");
    }
}
