//! Smoke tests: every table/figure driver produces well-formed output at a
//! tiny scale (the real regeneration commands are documented in
//! EXPERIMENTS.md).

use pap_bench::{ext_allgather, ext_skew_factor, fig1, fig2, fig3, fig4, fig5, fig6, figs789, table1, table2, Scale};
use pap::collectives::CollectiveKind;

#[test]
fn tables() {
    let t1 = table1();
    for m in ["SimCluster", "Hydra", "Galileo100", "Discoverer"] {
        assert!(t1.contains(m), "missing machine {m}");
    }
    let t2 = table2();
    for name in ["Binomial", "In-order Binary", "Rabenseifner", "Modified Bruck", "Linear with Sync"] {
        assert!(t2.contains(name), "missing algorithm {name}");
    }
}

#[test]
fn fig1_emits_one_line_per_rank() {
    let scale = Scale::tiny();
    let out = fig1(scale);
    assert!(out.contains("MPI_Alltoall calls in FT on Galileo100"));
    let data_lines = out
        .lines()
        .filter(|l| l.contains(", ") && l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .count();
    assert_eq!(data_lines, scale.ranks);
}

#[test]
fn fig2_fig3_static() {
    assert!(fig2().contains("d^ <= d*"));
    let f3 = fig3();
    for shape in ["ascending", "descending", "random", "last_delayed", "v_shape", "half_step"] {
        assert!(f3.contains(shape));
    }
}

#[test]
fn fig4_covers_all_patterns_and_sizes() {
    let out = fig4(CollectiveKind::Reduce, Scale::tiny());
    for pattern in ["no_delay", "ascending", "last_delayed", "half_step"] {
        assert!(out.contains(pattern), "missing row {pattern}");
    }
    assert!(out.contains("legend:"));
    // Each pattern row has one winner cell per size (3 sizes in quick mode).
    let row = out.lines().find(|l| l.starts_with("last_delayed")).unwrap();
    assert_eq!(row.matches(" A").count(), 3, "{row}");
}

#[test]
fn fig5_and_fig6_render_matrices() {
    let scale = Scale::tiny();
    let f5 = fig5(scale);
    assert!(f5.contains("MPI_Reduce") && f5.contains("MPI_Allreduce") && f5.contains("MPI_Alltoall"));
    assert!(f5.contains('*'), "fastest markers expected");
    let f6 = fig6(scale);
    assert!(f6.contains("robustness"));
    assert!(f6.contains("no_delay"));
}

#[test]
fn figs789_combined_driver() {
    let out = figs789(Scale::tiny());
    assert!(out.contains("Fig. 7"));
    assert!(out.contains("Fig. 8"));
    assert!(out.contains("Fig. 9"));
    assert!(out.contains("ft_scenario"));
    assert!(out.contains("proj_no_delay"));
    // All three machines appear.
    for m in ["Hydra", "Galileo100", "Discoverer"] {
        assert!(out.contains(m), "missing {m}");
    }
}

#[test]
fn extension_drivers_render() {
    let scale = Scale::tiny();
    let ag = ext_allgather(scale);
    assert!(ag.contains("MPI_Allgather"));
    assert!(ag.contains("robust pick"));
    let sf = ext_skew_factor(scale);
    assert!(sf.contains("0.5") && sf.contains("1.5"));
    assert_eq!(sf.lines().count(), 2 + 3 + 1);
}
