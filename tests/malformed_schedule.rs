//! Malformed-schedule and edge-case tests across the stack: tampered or
//! invalid *programs* must surface as typed errors, not hangs or silent
//! corruption. Runtime faults on *well-formed* schedules (crashes, stalls,
//! link slowdowns) are covered by `tests/fault_injection.rs`.

use pap::arrival::{generate, ArrivalPattern, Shape};
use pap::collectives::{build, verify, CollSpec, CollectiveKind};
use pap::core::{select, BenchMatrix, SelectionPolicy, TuningTable};
use pap::microbench::{measure, BenchConfig};
use pap::sim::{run, Job, Op, Platform, RankProgram, SimConfig, SimError};

/// A hand-built circular wait is reported as a deadlock with the involved
/// ranks, not an infinite loop.
#[test]
fn engine_reports_circular_wait() {
    let p = 4;
    let platform = Platform::simcluster(p);
    // Ring of blocking receives with no sends at all.
    let programs = (0..p)
        .map(|r| RankProgram::from_ops(vec![Op::recv((r + 1) % p, 0, 0)]))
        .collect();
    match run(&platform, Job::new(programs), &SimConfig::default()) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), p);
            let msg = format!("{}", SimError::Deadlock { at: 0.0, blocked });
            assert!(msg.contains("deadlock"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// A tampered schedule (one receive removed) deadlocks rather than
/// producing a wrong result.
#[test]
fn tampered_collective_deadlocks_not_corrupts() {
    let p = 8;
    // Rendezvous-sized message: the orphaned sender can never complete.
    let spec = CollSpec::new(CollectiveKind::Reduce, 5, 64 * 1024);
    let mut built = build(&spec, p).unwrap();
    // Remove the root's first receive.
    let pos = built.rank_ops[0].iter().position(|o| matches!(o, Op::Recv { .. })).unwrap();
    built.rank_ops[0].remove(pos);
    let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
    let platform = Platform::simcluster(p);
    let res = run(&platform, Job::new(programs), &SimConfig::tracking());
    assert!(
        matches!(res, Err(SimError::Deadlock { .. })),
        "a missing receive must deadlock (the sender blocks or the waitall never completes), got {res:?}"
    );
}

/// A corrupted schedule that *completes* with wrong data is caught by
/// verification (here: a reduce contribution counted twice).
#[test]
fn verification_catches_double_count() {
    let p = 4;
    let spec = CollSpec::new(CollectiveKind::Reduce, 1, 64);
    let mut built = build(&spec, p).unwrap();
    // Rank 0 (the root) folds its own input in twice.
    built.rank_ops[0].push(Op::InitSlot { slot: 2, value: pap::sim::Value::reduce_input(0, 0, 1) });
    built.rank_ops[0].push(Op::ReduceLocal { from: 2, into: 0, bytes: 64 });
    let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
    let out = run(&Platform::simcluster(p), Job::new(programs), &SimConfig::tracking()).unwrap();
    let err = verify(&spec, p, &out).unwrap_err();
    assert!(err.contains("double-counted"), "{err}");
}

/// Harness propagates simulator failures as typed errors.
#[test]
fn harness_surfaces_unknown_algorithm() {
    let platform = Platform::simcluster(4);
    let spec = CollSpec::new(CollectiveKind::Alltoall, 99, 64);
    let pattern = generate(Shape::NoDelay, 4, 0.0, 0);
    let err = measure(&platform, &spec, &pattern, &BenchConfig::simulation());
    assert!(err.is_err());
    let msg = format!("{}", err.err().unwrap());
    assert!(msg.contains("unknown algorithm"), "{msg}");
}

/// Pattern with non-finite delays is rejected at construction (fail fast,
/// not NaN propagation through the metrics).
#[test]
fn non_finite_pattern_rejected() {
    let caught = std::panic::catch_unwind(|| ArrivalPattern::new("bad", vec![f64::NAN]));
    assert!(caught.is_err());
    let caught = std::panic::catch_unwind(|| ArrivalPattern::new("bad", vec![f64::INFINITY]));
    assert!(caught.is_err());
}

/// Selection on a matrix missing the required row fails cleanly.
#[test]
fn selection_errors_are_typed() {
    let m = BenchMatrix {
        kind: CollectiveKind::Alltoall,
        bytes: 8,
        algs: vec![1, 2],
        patterns: vec!["ascending".into()],
        values: vec![vec![1.0, 2.0]],
    };
    assert!(select(&m, &SelectionPolicy::NoDelayFastest).is_err());
    assert!(select(&m, &SelectionPolicy::BestUnderPattern("nope".into())).is_err());
    // Robust average still works with whatever rows exist.
    assert_eq!(select(&m, &SelectionPolicy::robust()).unwrap(), 1);
}

/// Tuning tables tolerate junk input.
#[test]
fn tuning_table_rejects_garbage() {
    assert!(TuningTable::from_json("{").is_err());
    assert!(TuningTable::from_json("[1,2,3]").is_err());
    let empty = TuningTable::new();
    assert!(empty.lookup("Hydra", CollectiveKind::Reduce, 8, 8).is_none());
}

/// Zero-byte collectives run and verify (control-message-only operations).
#[test]
fn zero_byte_collectives_work() {
    let p = 6;
    let platform = Platform::simcluster(p);
    for kind in [CollectiveKind::Reduce, CollectiveKind::Allreduce, CollectiveKind::Bcast] {
        let spec = CollSpec::new(kind, if kind == CollectiveKind::Allreduce { 3 } else { 5 }, 0);
        let built = build(&spec, p).unwrap();
        let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
        let out = run(&platform, Job::new(programs), &SimConfig::tracking()).unwrap();
        verify(&spec, p, &out).unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

/// The harness measures correctly even when the pattern skews *every* rank
/// (no rank at delay zero is not possible by construction, but a pattern
/// rescaled to a tiny skew must behave like NoDelay).
#[test]
fn vanishing_skew_converges_to_no_delay() {
    let p = 16;
    let platform = Platform::simcluster(p);
    let spec = CollSpec::new(CollectiveKind::Alltoall, 3, 1024);
    let cfg = BenchConfig::simulation();
    let nodelay = measure(&platform, &spec, &generate(Shape::NoDelay, p, 0.0, 0), &cfg).unwrap();
    let tiny = measure(&platform, &spec, &generate(Shape::Random, p, 1e-12, 0), &cfg).unwrap();
    let rel = (tiny.mean_last() - nodelay.mean_last()).abs() / nodelay.mean_last();
    assert!(rel < 1e-3, "1 ps of skew changed d̂ by {rel}");
}
