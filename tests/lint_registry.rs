//! Static-analysis gate: the full algorithm registry must lint clean.
//!
//! `pap-lint` abstract-interprets every registered algorithm's schedule
//! (every collective × {8, 12, 32} ranks × all roots × sizes straddling the
//! eager threshold) with zero simulator runs; this suite asserts no
//! error-severity finding exists anywhere and pins the diagnostic-free state
//! in `results/lint_registry.json`. Regenerate the fixture after an
//! intentional registry change with
//! `PAP_UPDATE_FIXTURES=1 cargo test --test lint_registry`.

use std::sync::OnceLock;

use pap::lint::{sweep_registry, SweepConfig, SweepSummary};

/// The sweep, computed once and shared by every test in this file.
fn summary() -> &'static SweepSummary {
    static SUMMARY: OnceLock<SweepSummary> = OnceLock::new();
    SUMMARY.get_or_init(|| sweep_registry(&SweepConfig::default()))
}

#[test]
fn full_registry_is_lint_clean() {
    let s = summary();
    assert!(s.cases > 4000, "sweep shrank unexpectedly: {} cases", s.cases);
    assert_eq!(
        s.errors,
        0,
        "registry has error-severity lint findings:\n{}",
        s.findings
            .iter()
            .flat_map(|f| f.diagnostics.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(s.warnings, 0, "registry has lint warnings: {:#?}", s.findings);
    assert_eq!(s.clean_cases, s.cases);
}

#[test]
fn sweep_covers_the_acceptance_grid() {
    let s = summary();
    assert_eq!(s.ranks, vec![8, 12, 32], "must cover power-of-two and non-power-of-two p");
    assert!(
        s.sizes.iter().any(|&b| b <= s.eager_threshold)
            && s.sizes.iter().any(|&b| b > s.eager_threshold),
        "sizes {:?} must straddle the eager threshold {}",
        s.sizes,
        s.eager_threshold
    );
    // Every registered algorithm of every collective appears.
    use pap::collectives::registry::algorithms;
    use pap::collectives::CollectiveKind;
    for kind in [
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Alltoall,
        CollectiveKind::Bcast,
        CollectiveKind::Barrier,
        CollectiveKind::Allgather,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
    ] {
        for a in algorithms(kind) {
            assert!(
                s.algorithms
                    .iter()
                    .any(|row| row.collective == kind.name() && row.alg == a.id && row.cases > 0),
                "{} alg {} missing from the sweep",
                kind.name(),
                a.id
            );
        }
    }
}

/// Golden fixture: the registry's lint state (per-algorithm case/error/warning
/// counts) is pinned so a regression shows up as a readable JSON diff.
#[test]
fn lint_registry_fixture_is_current() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/lint_registry.json");
    let current = summary();
    if std::env::var("PAP_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        let pretty = serde_json::to_string_pretty(current).unwrap();
        std::fs::write(path, pretty + "\n").unwrap();
        return;
    }
    let stored: SweepSummary = serde_json::from_str(
        &std::fs::read_to_string(path).expect(
            "missing results/lint_registry.json — generate it with \
             PAP_UPDATE_FIXTURES=1 cargo test --test lint_registry",
        ),
    )
    .unwrap();
    assert_eq!(
        &stored, current,
        "registry lint fixture is stale; if the schedule change is \
         intentional, regenerate with PAP_UPDATE_FIXTURES=1"
    );
}
