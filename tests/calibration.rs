//! Closed-loop calibration acceptance: onboarding unseen machines from a
//! measured probe (`pap-calibrate`).
//!
//! * Each real preset is treated as a black box: a probe is synthesized from
//!   it with noise and drifting clocks enabled, fitted blind, and selection
//!   from the fitted parameters must agree with the true preset on >= 90% of
//!   the Fig. 4 grid. The fitted-vs-true summary is pinned as a golden
//!   fixture under `results/` (regenerate with `PAP_UPDATE_FIXTURES=1`).
//! * A cold daemon — no preset tuning, no snapshot — must answer queries for
//!   a `Custom` machine after one `Calibrate` frame, with background sim
//!   refinement observable through the generation bump.
//! * `LinkParams::transfer_time` invariants and snapshot compatibility for
//!   `Custom` machines (old snapshot files must still load).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pap::calibrate::{
    fit_probe, selection_agreement, synthesize_probe, AgreementReport, ProbeConfig, CHECK_RANKS,
};
use pap::collectives::CollectiveKind;
use pap::core::tuner::{tune_machine, TunePlan};
use pap::microbench::{Backend, BenchConfig};
use pap::service::{Client, QueryRequest, ServeConfig, Server, Snapshot, Tier};
use pap::sim::{register_custom_platform, LinkParams, MachineId, Platform};
use proptest::prelude::*;
use serde::Serialize;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pap-calibration-{}-{name}", std::process::id()));
    p
}

/// What the golden fixture pins per machine: the agreement score, every
/// disagreeing grid cell, and the fitted-vs-true parameter table (fixed
/// formatting keeps the file readable and byte-stable — the whole pipeline
/// is deterministic under the probe's fixed seed).
#[derive(Serialize)]
struct CalibrationPin {
    machine: String,
    fitted: String,
    ranks: usize,
    cells: usize,
    agreement_pct: String,
    disagreements: Vec<String>,
    params: Vec<String>,
}

fn pin_of(r: &AgreementReport) -> CalibrationPin {
    CalibrationPin {
        machine: r.machine.clone(),
        fitted: r.fitted.clone(),
        ranks: r.ranks,
        cells: r.cells.len(),
        agreement_pct: format!("{:.1}", 100.0 * r.agreement),
        disagreements: r
            .cells
            .iter()
            .filter(|c| !c.agrees())
            .map(|c| {
                format!(
                    "{} @ {} B, {}: true={} fitted={}",
                    c.kind, c.bytes, c.policy, c.true_pick, c.fitted_pick
                )
            })
            .collect(),
        params: r
            .params
            .iter()
            .map(|p| {
                format!(
                    "{}: true={:.4e} fitted={:.4e} rel_err={:.2}%",
                    p.name,
                    p.true_value,
                    p.fitted_value,
                    100.0 * p.rel_err
                )
            })
            .collect(),
    }
}

/// Acceptance: for every real preset of Table I, a blind fit from a noisy,
/// clock-skewed probe selects the same algorithm as the true platform on at
/// least 90% of the Fig. 4 grid.
#[test]
fn fitted_selection_matches_true_presets_on_fig4_grid() {
    let mut pins = Vec::new();
    for (machine, name) in [
        (MachineId::Hydra, "fitcheck-hydra"),
        (MachineId::Galileo100, "fitcheck-galileo100"),
        (MachineId::Discoverer, "fitcheck-discoverer"),
    ] {
        // Black box: the probe observes the preset only through measured
        // (noisy, clock-corrected) timings; the fit never sees the spec.
        let probe = synthesize_probe(machine, name, &ProbeConfig::default()).expect("probe");
        let fit = fit_probe(&probe).expect("guideline-clean fit on a real preset");
        let fitted = register_custom_platform(name, fit.spec.clone()).expect("register");
        let report = selection_agreement(machine, fitted, CHECK_RANKS).expect("agreement grid");
        assert!(
            report.agreement >= 0.90,
            "{}: fitted selection agrees on only {:.1}% of the Fig. 4 grid",
            machine.name(),
            100.0 * report.agreement
        );
        pins.push(pin_of(&report));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/calibration_agreement.json");
    let current = serde_json::to_string_pretty(&pins).unwrap() + "\n";
    if std::env::var("PAP_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::write(path, current).unwrap();
        return;
    }
    let stored = std::fs::read_to_string(path).expect(
        "missing results/calibration_agreement.json — generate it with \
         PAP_UPDATE_FIXTURES=1 cargo test --test calibration",
    );
    assert_eq!(
        stored, current,
        "fitted-vs-true calibration summary drifted — if intended, regenerate \
         with PAP_UPDATE_FIXTURES=1 cargo test --test calibration"
    );
}

/// Acceptance: a cold `papd` (no preset, no snapshot) rejects queries for an
/// unknown machine, onboards it from one `Calibrate` frame, serves follow-up
/// queries from the published L2 grid, and upgrades cells to sim-backed
/// evidence in the background (observable as a generation bump).
#[test]
fn cold_daemon_onboards_a_custom_machine_from_one_calibrate_frame() {
    let cfg = ServeConfig { tune_at_startup: false, refine_threads: 1, ..ServeConfig::default() };
    let server = Server::start(cfg).expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let q = QueryRequest {
        machine: "custom:e2e-site".into(),
        collective: CollectiveKind::Reduce,
        bytes: 8,
        ranks: 4,
        arrivals: None,
    };
    let err = client.query(q.clone()).expect_err("unknown machine must be rejected while cold");
    assert!(err.contains("no registered calibration"), "unexpected rejection: {err}");

    let probe = synthesize_probe(
        MachineId::SimCluster,
        "e2e-site",
        &ProbeConfig { reps: 2, noise: false, clock_sync: false, ..ProbeConfig::default() },
    )
    .expect("probe");
    let ans = client.calibrate("e2e-site", 4, probe).expect("calibrate frame");
    assert_eq!(ans.machine, "custom:e2e-site");
    assert_eq!(ans.l2_cells, 12, "the default pre-tune plan is 3 kinds x 4 sizes");
    assert_eq!(
        ans.refine_scheduled, ans.l2_cells,
        "every model-backed cell must get a sim upgrade scheduled"
    );
    assert!(ans.fit.median_rel_residual < 0.15, "noise-free fit should be tight");

    // The machine now answers from the L2 grid the calibration published.
    // The backend starts as "model" but the background worker may upgrade
    // this very cell (it is the first ticket) before the reply round-trips,
    // so only the tier is pinned here and the final state below.
    let first = client.query(q.clone()).expect("first query after calibration");
    assert_eq!(first.machine, "custom:e2e-site");
    assert_eq!(first.tier, Tier::L2);

    // Background sim refinement lands cell by cell; the first tuned cell is
    // exactly this query's. The upgrade invalidates the L1 entry, so the
    // re-query serves sim-backed evidence at the bumped generation.
    let deadline = Instant::now() + Duration::from_secs(180);
    let refined = loop {
        let a = client.query(q.clone()).expect("query during refinement");
        if a.backend == "sim" {
            break a;
        }
        assert!(Instant::now() < deadline, "background sim refinement never landed");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(refined.generation, 1, "the sim upgrade must bump the cell generation");
    assert_ne!(
        refined.tier,
        Tier::Computed,
        "the refined answer must come from cached evidence (L2, or L1 once re-served)"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.endpoints.calibrate, 1);
    assert!(stats.tiers.refines_applied >= 1);

    client.shutdown().expect("shutdown handshake");
    server.join();
}

/// Snapshots tuned on a calibrated `Custom` machine round-trip and warm-start
/// a daemon; files written before the calibration subsystem existed (preset
/// machines, no `faults` key) still load.
#[test]
fn tuning_snapshots_carry_custom_machines_and_old_files_still_load() {
    let probe = synthesize_probe(
        MachineId::SimCluster,
        "snap-compat",
        &ProbeConfig { reps: 1, noise: false, clock_sync: false, ..ProbeConfig::default() },
    )
    .expect("probe");
    let fit = fit_probe(&probe).expect("fit");
    let machine = register_custom_platform("snap-compat", fit.spec).expect("register");
    let platform = Platform::try_preset(machine, 4).expect("resolve custom platform");
    let cfg = BenchConfig::simulation().with_backend(Backend::Model);
    let (_, records) = tune_machine(&platform, &TunePlan::default(), &cfg).expect("tune");

    let snap = Snapshot::from_records(machine.name(), 4, "model", &records);
    let back = Snapshot::from_json(&snap.to_json()).expect("round trip");
    assert_eq!(back, snap, "custom-machine snapshots must round-trip");
    assert_eq!(back.machine, "custom:snap-compat");

    // Warm restart from that snapshot: the custom machine serves from L2
    // with no startup tuning (the registration above is process-global, as
    // it would be after a `Calibrate` frame or `papctl calibrate`).
    let path = scratch("custom-snapshot.json");
    snap.save(&path).expect("save snapshot");
    let server = Server::start(ServeConfig {
        snapshot: Some(path.clone()),
        tune_at_startup: false,
        refine_threads: 0,
        ..ServeConfig::default()
    })
    .expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let a = client
        .query(QueryRequest {
            machine: "custom:snap-compat".into(),
            collective: CollectiveKind::Reduce,
            bytes: 8,
            ranks: 4,
            arrivals: None,
        })
        .expect("query against snapshot-loaded custom machine");
    assert_eq!(a.tier, Tier::L2);
    client.shutdown().expect("shutdown handshake");
    server.join();
    let _ = std::fs::remove_file(&path);

    // Forward compat: a file from before this subsystem existed — preset
    // machine name, no "faults" key on any cell — must still parse.
    let legacy = snap
        .to_json()
        .replace("custom:snap-compat", "simcluster")
        .replace(",\n      \"faults\": null", "");
    let old = Snapshot::from_json(&legacy).expect("pre-calibration snapshot must still load");
    assert_eq!(old.machine, "simcluster");
    assert_eq!(old.cells.len(), snap.cells.len());
}

fn presets() -> [MachineId; 4] {
    [MachineId::SimCluster, MachineId::Hydra, MachineId::Galileo100, MachineId::Discoverer]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Transfer time never decreases with message size, and never undercuts
    /// the wire latency.
    #[test]
    fn transfer_time_is_monotone_in_bytes(
        lat in 1e-9f64..1e-2,
        bw in 1e6f64..1e14,
        lo in 0u64..1 << 31,
        delta in 0u64..1 << 31,
    ) {
        let link = LinkParams { latency: lat, bandwidth: bw };
        prop_assert!(link.transfer_time(lo + delta) >= link.transfer_time(lo));
        prop_assert!(link.transfer_time(lo) >= lat);
    }

    /// Crossing the switch is never cheaper than shared memory in the
    /// latency term, on any preset; for latency-bound sizes that dominance
    /// carries over to the whole transfer (big messages may cross over on
    /// presets whose inter-node links out-run their memory bandwidth).
    #[test]
    fn inter_link_dominates_intra_on_every_preset(bytes in 0u64..8192) {
        for m in presets() {
            let p = Platform::try_preset(m, 64).unwrap();
            prop_assert!(
                p.inter.latency >= p.intra.latency,
                "{}: inter latency undercuts intra", m.name()
            );
            prop_assert!(
                p.inter.transfer_time(bytes) >= p.intra.transfer_time(bytes),
                "{}: inter transfer undercuts intra at {} bytes", m.name(), bytes
            );
        }
    }

    /// `LinkParams` survive JSON serialization bit-exactly (the format the
    /// fitted `PlatformSpec` travels in, both on disk and on the wire).
    #[test]
    fn link_params_survive_a_serde_round_trip(lat in 1e-9f64..1e-2, bw in 1e6f64..1e14) {
        let link = LinkParams { latency: lat, bandwidth: bw };
        let json = serde_json::to_string(&link).unwrap();
        let back: LinkParams = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(link, back);
    }
}
