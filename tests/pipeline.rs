//! Integration tests of the full tool pipelines across crates:
//! application → tracer → pattern → micro-benchmark → matrix → selection →
//! tuning table → prediction.

use pap::apps::{run_ft, run_stencil, FtConfig, StencilConfig};
use pap::arrival::Shape;
use pap::collectives::registry::experiment_ids;
use pap::collectives::CollectiveKind;
use pap::core::{predict_app_runtime, select, BenchMatrix, SelectionPolicy, TuningEntry, TuningTable};
use pap::microbench::{sweep, BenchConfig, SkewPolicy};
use pap::sim::Platform;
use pap::tracer::{ideal_observer, CollectiveTrace, TracerConfig};

const P: usize = 32;

/// The complete §V workflow on a small instance.
#[test]
fn trace_replay_select_predict_pipeline() {
    let platform = Platform::galileo100(P);
    let mut ft_cfg = FtConfig::class_d_like(P);
    ft_cfg.iterations = 4;
    ft_cfg.bytes_per_pair = 4096;

    // 1. Trace.
    let (report, out) = run_ft(&platform, &ft_cfg).expect("ft");
    let trace = CollectiveTrace::from_outcome(
        &out,
        P,
        CollectiveKind::Alltoall.label_kind(),
        &TracerConfig::default(),
        ideal_observer,
    );
    assert_eq!(trace.len(), 4);
    let mp = trace.to_measured_pattern("ft_scenario");
    assert_eq!(mp.len(), P);
    assert!(trace.max_observed_skew() > 0.0);

    // 2. Replay in micro-benchmarks (artificial suite + FT-Scenario).
    let algs = experiment_ids(CollectiveKind::Alltoall);
    let cfg = BenchConfig::real_machine(2);
    let sw = sweep(
        &platform,
        CollectiveKind::Alltoall,
        &algs,
        &Shape::SUITE,
        ft_cfg.bytes_per_pair,
        SkewPolicy::Fixed(trace.max_observed_skew()),
        &[mp.to_pattern()],
        &cfg,
    )
    .expect("sweep");
    let matrix = BenchMatrix::from_sweep(&sw);
    assert_eq!(matrix.patterns.len(), 10);
    assert_eq!(matrix.algs, algs);

    // 3. Select.
    let robust =
        select(&matrix, &SelectionPolicy::RobustAverage { exclude: vec!["ft_scenario".into()] }).unwrap();
    assert!(algs.contains(&robust));

    // 4. Persist and reload the tuning decision.
    let mut table = TuningTable::new();
    table.insert(TuningEntry {
        machine: platform.machine.name().into(),
        kind: CollectiveKind::Alltoall,
        ranks: P,
        bytes: ft_cfg.bytes_per_pair,
        alg: robust,
        policy: "robust_average".into(),
    });
    let reloaded = TuningTable::from_json(&table.to_json()).unwrap();
    assert_eq!(
        reloaded
            .lookup(platform.machine.name(), CollectiveKind::Alltoall, P, ft_cfg.bytes_per_pair)
            .unwrap()
            .alg,
        robust
    );

    // 5. Predict the application runtime from the matrix.
    let nd = matrix.value("no_delay", robust).unwrap();
    let patterns: Vec<&str> =
        matrix.patterns.iter().map(String::as_str).filter(|p| *p != "ft_scenario").collect();
    let avg = patterns.iter().map(|p| matrix.value(p, robust).unwrap()).sum::<f64>() / patterns.len() as f64;
    let pred = predict_app_runtime(
        report.total_runtime,
        report.compute_time,
        ft_cfg.iterations,
        nd,
        avg,
    );
    assert!(pred.predicted_no_delay > report.compute_time);
    // Note: the pattern-averaged d̂ may be *smaller* than the No-delay d̂
    // (algorithms can absorb skew — the green cells of Fig. 6), so no
    // ordering is asserted between the two projections.
    assert!(pred.predicted_avg > report.compute_time);
    assert!(pred.error_avg().is_finite() && pred.error_no_delay().is_finite());
}

/// The FT-Scenario replayed through the harness ranks algorithms in the
/// same order as the actual application (the paper's validation).
#[test]
fn ft_scenario_microbenchmark_predicts_application_ranking() {
    let platform = Platform::galileo100(P);
    let mut ft_cfg = FtConfig::class_d_like(P);
    ft_cfg.iterations = 5;

    let (_, out) = run_ft(&platform, &ft_cfg).expect("ft");
    let trace = CollectiveTrace::from_outcome(
        &out,
        P,
        CollectiveKind::Alltoall.label_kind(),
        &TracerConfig::default(),
        ideal_observer,
    );
    let algs = experiment_ids(CollectiveKind::Alltoall);
    let cfg = BenchConfig::real_machine(3);
    let sw = sweep(
        &platform,
        CollectiveKind::Alltoall,
        &algs,
        &[],
        ft_cfg.bytes_per_pair,
        SkewPolicy::Fixed(trace.max_observed_skew()),
        &[trace.to_measured_pattern("ft_scenario").to_pattern()],
        &cfg,
    )
    .expect("sweep");
    let matrix = BenchMatrix::from_sweep(&sw);
    let oracle = select(&matrix, &SelectionPolicy::BestUnderPattern("ft_scenario".into())).unwrap();

    // Actual winner in the application.
    let mut best = (0u8, f64::INFINITY);
    for &alg in &algs {
        let rt = run_ft(&platform, &ft_cfg.clone().with_alltoall(alg)).unwrap().0.total_runtime;
        if rt < best.1 {
            best = (alg, rt);
        }
    }
    // The oracle must pick the actual winner or one within 10% of it.
    let oracle_rt = run_ft(&platform, &ft_cfg.clone().with_alltoall(oracle)).unwrap().0.total_runtime;
    assert!(
        oracle_rt <= best.1 * 1.10,
        "FT-Scenario oracle picked A{oracle} ({oracle_rt:.4}s) vs actual best A{} ({:.4}s)",
        best.0,
        best.1
    );
}

/// Tracer sampling bounds trace size without destroying the aggregate
/// pattern.
#[test]
fn sampled_trace_approximates_full_trace() {
    let platform = Platform::hydra(P);
    let mut ft_cfg = FtConfig::class_d_like(P);
    ft_cfg.iterations = 6;
    let (_, out) = run_ft(&platform, &ft_cfg).expect("ft");
    let kind = CollectiveKind::Alltoall.label_kind();
    let full = CollectiveTrace::from_outcome(&out, P, kind, &TracerConfig::default(), ideal_observer);
    let sampled = CollectiveTrace::from_outcome(
        &out,
        P,
        kind,
        &TracerConfig { call_stride: 2, rank_stride: 1 },
        ideal_observer,
    );
    assert_eq!(sampled.len(), 3);
    // Average delays correlate strongly (same persistent imbalance).
    let a = full.avg_delays();
    let b = sampled.avg_delays();
    let corr = correlation(&a, &b);
    assert!(corr > 0.8, "sampled trace decorrelated: {corr}");
}

/// The stencil proxy (allreduce-bound) runs through the same tooling.
#[test]
fn stencil_pipeline_runs() {
    let platform = Platform::hydra(P);
    let cfg = StencilConfig::cg_like(P);
    let (rep, out) = run_stencil(&platform, &cfg).expect("stencil");
    assert!(rep.total_runtime > 0.0);
    let trace = CollectiveTrace::from_outcome(
        &out,
        P,
        CollectiveKind::Allreduce.label_kind(),
        &TracerConfig::default(),
        ideal_observer,
    );
    assert_eq!(trace.len(), cfg.iterations);
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-30)
}

/// §V-A: Alltoall dominates the FT proxy's MPI time — the property that
/// makes FT the right validation vehicle for Alltoall tuning.
#[test]
fn ft_proxy_is_alltoall_dominated() {
    let p = 64;
    let platform = Platform::hydra(p);
    let mut cfg = FtConfig::class_d_like(p);
    cfg.iterations = 4;
    let (rep, out) = run_ft(&platform, &cfg).expect("ft");

    // MPI time is a meaningful share of the runtime (the paper reports
    // 50-70% on the real machines; the proxy is calibrated near that).
    let share = rep.mpi_time / rep.total_runtime;
    assert!((0.2..0.9).contains(&share), "MPI share {share:.2} out of band");

    // And of the MPI time, Alltoall dwarfs the checksum Allreduce: compare
    // the summed per-rank phase durations.
    let sum_for = |kind: u32| -> f64 {
        out.phases
            .iter()
            .filter(|ph| ph.label.kind == kind)
            .map(|ph| ph.exit - ph.enter)
            .sum()
    };
    let a2a = sum_for(CollectiveKind::Alltoall.label_kind());
    let chk = sum_for(CollectiveKind::Allreduce.label_kind());
    assert!(
        a2a > 0.95 * (a2a + chk),
        "alltoall should be >95% of MPI operation time (paper §V-A): {:.1}%",
        a2a / (a2a + chk) * 100.0
    );
}
