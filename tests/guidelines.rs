//! Self-consistency ("performance guideline") tests in the style of
//! Hunold/Träff's MPI performance-guideline work, run against **both** cost
//! backends (event-driven simulator and analytical model):
//!
//! * composition guidelines — `Allreduce(n) ≲ Reduce(n) + Bcast(n)` and
//!   `Scatter(n) ≲ Bcast(n)` for the best registered algorithm of each
//!   collective;
//! * monotonicity guidelines — for *every* registered algorithm of every
//!   collective, runtime must not decrease when the message size or the
//!   process count grows.
//!
//! A backend that violates these is internally inconsistent regardless of
//! how well it matches any reference, which makes them a cheap,
//! reference-free complement to the differential suite. Violations are
//! collected and printed as `(backend, collective, alg, p, size)` cells.

use pap::arrival::{generate, Shape};
use pap::collectives::registry::algorithms;
use pap::collectives::{CollSpec, CollectiveKind};
use pap::microbench::{measure, Backend, BenchConfig};
use pap::sim::Platform;

const BACKENDS: [Backend; 2] = [Backend::Sim, Backend::Model];

const KINDS: [CollectiveKind; 8] = [
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Alltoall,
    CollectiveKind::Bcast,
    CollectiveKind::Barrier,
    CollectiveKind::Gather,
    CollectiveKind::Scatter,
    CollectiveKind::Allgather,
];

/// Completion time (d̂ under a no-delay pattern = the collective's runtime)
/// of one algorithm on `p` SimCluster ranks.
fn runtime(backend: Backend, kind: CollectiveKind, alg: u8, p: usize, bytes: u64) -> f64 {
    let platform = Platform::simcluster(p);
    let pattern = generate(Shape::NoDelay, p, 0.0, 1);
    let spec = CollSpec::new(kind, alg, bytes);
    let cfg = BenchConfig::simulation().with_backend(backend);
    measure(&platform, &spec, &pattern, &cfg)
        .unwrap_or_else(|e| panic!("{backend} {kind} A{alg} p={p} {bytes} B: {e}"))
        .mean_last()
}

/// Best (minimum) runtime over all registered algorithms of a collective.
fn best(backend: Backend, kind: CollectiveKind, p: usize, bytes: u64) -> f64 {
    algorithms(kind)
        .iter()
        .map(|a| runtime(backend, kind, a.id, p, bytes))
        .fold(f64::INFINITY, f64::min)
}

/// Multiplicative slack plus an absolute epsilon: guidelines are "≲", not
/// "≤" — constant factors (extra tree setup, an o_s here or there) are
/// allowed, structural violations are not.
fn within(lhs: f64, rhs: f64) -> bool {
    lhs <= rhs * 1.10 + 2e-6
}

/// Allreduce(n) ≲ Reduce(n) + Bcast(n): an allreduce that loses to the
/// trivial two-phase composition means its cost model (or schedule) is
/// structurally wrong.
#[test]
fn allreduce_not_slower_than_reduce_plus_bcast() {
    let mut violations = Vec::new();
    for backend in BACKENDS {
        for p in [8, 16, 64] {
            for n in [1024u64, 32768] {
                let ar = best(backend, CollectiveKind::Allreduce, p, n);
                let rd = best(backend, CollectiveKind::Reduce, p, n);
                let bc = best(backend, CollectiveKind::Bcast, p, n);
                if !within(ar, rd + bc) {
                    violations.push(format!(
                        "({backend}, MPI_Allreduce, best, p={p}, {n} B): \
                         {ar:.3e} > reduce {rd:.3e} + bcast {bc:.3e}"
                    ));
                }
            }
        }
    }
    assert!(violations.is_empty(), "guideline violations:\n{}", violations.join("\n"));
}

/// Scatter(n) ≲ Bcast(n): broadcasting the whole n-byte vector is a valid
/// (wasteful) scatter implementation, so a scatter that is slower than the
/// best bcast of the same total volume is inconsistent. Scatter's
/// `spec.bytes` is the per-rank block, hence `n / p`.
#[test]
fn scatter_not_slower_than_bcast() {
    let mut violations = Vec::new();
    for backend in BACKENDS {
        for p in [8, 16, 64] {
            for n in [8192u64, 65536] {
                let sc = best(backend, CollectiveKind::Scatter, p, n / p as u64);
                let bc = best(backend, CollectiveKind::Bcast, p, n);
                if !within(sc, bc) {
                    violations.push(format!(
                        "({backend}, MPI_Scatter, best, p={p}, {n} B total): \
                         {sc:.3e} > bcast {bc:.3e}"
                    ));
                }
            }
        }
    }
    assert!(violations.is_empty(), "guideline violations:\n{}", violations.join("\n"));
}

/// Sending more bytes must never be faster, for every registered algorithm
/// of every collective, on both backends.
#[test]
fn runtime_is_monotone_in_message_size() {
    const SIZES: [u64; 3] = [256, 1024, 4096];
    let p = 8;
    let mut violations = Vec::new();
    for backend in BACKENDS {
        for kind in KINDS {
            for a in algorithms(kind) {
                let ts: Vec<f64> =
                    SIZES.iter().map(|&n| runtime(backend, kind, a.id, p, n)).collect();
                for w in 0..SIZES.len() - 1 {
                    if ts[w] > ts[w + 1] * 1.02 + 1e-9 {
                        violations.push(format!(
                            "({backend}, {kind}, A{}, p={p}, {} B → {} B): \
                             {:.3e} > {:.3e}",
                            a.id,
                            SIZES[w],
                            SIZES[w + 1],
                            ts[w],
                            ts[w + 1]
                        ));
                    }
                }
            }
        }
    }
    assert!(violations.is_empty(), "guideline violations:\n{}", violations.join("\n"));
}

/// Adding processes must never make a collective faster, for every
/// registered algorithm of every collective, on both backends. (All counts
/// stay on one 32-core node so this isolates schedule depth from network
/// topology effects.)
#[test]
fn runtime_is_monotone_in_process_count() {
    const PS: [usize; 3] = [4, 8, 16];
    let n = 1024;
    let mut violations = Vec::new();
    for backend in BACKENDS {
        for kind in KINDS {
            for a in algorithms(kind) {
                let ts: Vec<f64> =
                    PS.iter().map(|&p| runtime(backend, kind, a.id, p, n)).collect();
                for w in 0..PS.len() - 1 {
                    if ts[w] > ts[w + 1] * 1.02 + 1e-9 {
                        violations.push(format!(
                            "({backend}, {kind}, A{}, p={} → p={}, {n} B): \
                             {:.3e} > {:.3e}",
                            a.id,
                            PS[w],
                            PS[w + 1],
                            ts[w],
                            ts[w + 1]
                        ));
                    }
                }
            }
        }
    }
    assert!(violations.is_empty(), "guideline violations:\n{}", violations.join("\n"));
}
