//! Fault-injection integration tier: runtime faults on *well-formed*
//! schedules, end to end — the `(algorithm × fault scenario)` grid, the
//! degraded-mode fault matrix, and the fault-robust selection policy.
//! (Malformed programs are `tests/malformed_schedule.rs`.)
//!
//! The golden fixture `results/fault_robustness_fig6.json` pins the full
//! degraded-mode robustness table for MPI_Reduce — the Fig. 6 methodology
//! extended from arrival skew to faults. Regenerate after an intentional
//! engine or grid change with
//! `PAP_UPDATE_FIXTURES=1 cargo test --test fault_injection`.

use std::sync::OnceLock;

use pap::collectives::registry::experiment_ids;
use pap::collectives::{CollSpec, CollectiveKind};
use pap::core::{render_fault_table, select_fault_robust, FaultMatrix};
use pap::microbench::{
    calibrate_avg_runtime, fault_sweep, profile_with_faults, standard_grid, BenchConfig,
};
use pap::sim::{FaultSpec, Platform};

const RANKS: usize = 16;
const BYTES: u64 = 1024;

/// Degradation bound of the fault-robust policy under test (`1.5` = at
/// most 2.5× slower than the algorithm's own clean run under any
/// scenario). On the pinned 16-rank Reduce grid exactly one algorithm
/// stays within this bound; every other degrades ≥ 2.6× or starves.
const BOUND: f64 = 1.5;

/// Pinned differential-quality floor: on at least this fraction of faulted
/// grid cells, the fault-robust pick must *degrade* no more than the
/// status-quo (clean-fastest) pick — degradation relative to each
/// algorithm's own clean run, the same normalization Fig. 6 applies to
/// arrival skew (starved cells degrade infinitely).
const MIN_BETTER_FRAC: f64 = 0.6;

/// The full MPI_Reduce fault grid, shared across tests (one sim sweep).
fn reduce_fault_matrix() -> &'static FaultMatrix {
    static MATRIX: OnceLock<FaultMatrix> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let platform = Platform::simcluster(RANKS);
        let cfg = BenchConfig::simulation();
        let kind = CollectiveKind::Reduce;
        let algs = experiment_ids(kind);
        let t = calibrate_avg_runtime(&platform, kind, &algs, BYTES, &cfg).unwrap();
        let scenarios = standard_grid(RANKS, t);
        let sw = fault_sweep(&platform, kind, &algs, BYTES, &scenarios, &cfg).unwrap();
        FaultMatrix::from_fault_sweep(&sw)
    })
}

#[test]
fn fault_robustness_fixture_is_current() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/fault_robustness_fig6.json");
    let current = serde_json::to_string_pretty(reduce_fault_matrix()).unwrap() + "\n";
    if std::env::var("PAP_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::write(path, current).unwrap();
        return;
    }
    let stored = std::fs::read_to_string(path).expect(
        "missing results/fault_robustness_fig6.json — generate it with \
         PAP_UPDATE_FIXTURES=1 cargo test --test fault_injection",
    );
    assert_eq!(
        stored, current,
        "fault-robustness fixture is stale; if the engine/grid change is \
         intentional, regenerate with PAP_UPDATE_FIXTURES=1"
    );
}

/// The headline acceptance property: the fault grid *discriminates* — the
/// status-quo (clean-fastest) pick is not the fault-robust pick, so at
/// least one faulted cell flips the selection.
#[test]
fn fault_robust_policy_flips_selection_on_the_grid() {
    let m = reduce_fault_matrix();
    let clean = m.scenario_index("clean").unwrap();
    let status_quo_col = (0..m.algs.len())
        .min_by(|&a, &b| {
            m.values[clean][a].unwrap().total_cmp(&m.values[clean][b].unwrap())
        })
        .unwrap();
    let status_quo = m.algs[status_quo_col];
    let robust = select_fault_robust(m, BOUND).unwrap();
    assert_ne!(
        robust, status_quo,
        "the fault grid must flip the selection away from the clean winner"
    );
    // The fault-robust pick honors its contract: bounded worst case, and
    // it survives every scenario *some* algorithm survives (the v2 grid's
    // entry crash starves every reduce schedule — nothing can survive
    // losing a contributor, so that row discriminates nothing).
    let worst = m.worst_case_degradation().unwrap();
    let robust_col = m.alg_index(robust).unwrap();
    assert!(worst[robust_col] <= BOUND, "worst case {} > bound", worst[robust_col]);
    let survivable = m
        .scenarios
        .iter()
        .zip(&m.values)
        .filter(|(s, row)| s.as_str() != "clean" && row.iter().any(Option::is_some))
        .count();
    assert_eq!(m.survived(robust).len(), survivable);
}

/// Differential quality floor: across the faulted cells, the fault-robust
/// pick degrades no more than the status-quo pick on at least
/// [`MIN_BETTER_FRAC`] of them. Degradation is relative to each
/// algorithm's own clean run (starved cells degrade infinitely) — exactly
/// the quantity the policy bounds and Fig. 6 tabulates.
#[test]
fn fault_robust_pick_beats_status_quo_on_most_faulted_cells() {
    let m = reduce_fault_matrix();
    let clean = m.scenario_index("clean").unwrap();
    let deg = m.degradation().unwrap();
    let status_quo_col = (0..m.algs.len())
        .min_by(|&a, &b| {
            m.values[clean][a].unwrap().total_cmp(&m.values[clean][b].unwrap())
        })
        .unwrap();
    let robust_col = m.alg_index(select_fault_robust(m, BOUND).unwrap()).unwrap();
    let cell = |r: usize, c: usize| deg[r][c].unwrap_or(f64::INFINITY);
    let mut no_worse = 0usize;
    let mut total = 0usize;
    for r in 0..m.scenarios.len() {
        if r == clean {
            continue;
        }
        total += 1;
        if cell(r, robust_col) <= cell(r, status_quo_col) {
            no_worse += 1;
        }
    }
    assert!(
        no_worse as f64 >= MIN_BETTER_FRAC * total as f64,
        "fault-robust pick degrades less on only {no_worse}/{total} faulted cells"
    );
}

/// The grid contains at least one starved cell (an algorithm whose schedule
/// needs the crashed leaf), and the renderer marks it.
#[test]
fn crash_scenario_starves_some_algorithm_and_renders() {
    let m = reduce_fault_matrix();
    let crash = m.scenario_index("crash_leaf").expect("standard grid has crash_leaf");
    assert!(
        m.values[crash].iter().any(Option::is_none),
        "killing a leaf must starve at least one reduce schedule"
    );
    let table = render_fault_table(m, 0.25).unwrap();
    assert!(table.contains('X'), "starved cells render as X:\n{table}");
    assert!(table.contains("crash_leaf"), "{table}");
}

/// End to end through the profiler: a faulted run yields a valid Perfetto
/// trace whose faults lane and crashed slice record where the schedule
/// stalled, and the degraded-mode d̂ is no better than the clean one.
#[test]
fn faulted_profile_round_trips_as_valid_trace() {
    let p = 8;
    let platform = Platform::simcluster(p);
    // Bcast is outside the paper's experiment set; take the first
    // registered algorithm instead.
    let alg = pap::collectives::registry::algorithms(CollectiveKind::Bcast)[0].id;
    let spec = CollSpec::new(CollectiveKind::Bcast, alg, 2048);
    let pattern = pap::arrival::generate(pap::arrival::Shape::Ascending, p, 1e-4, 3);
    let clean = profile_with_faults(&platform, &spec, &pattern, 3, &FaultSpec::none()).unwrap();
    let faults = FaultSpec::none()
        .with_stall(1, 1e-3, 2e-4)
        .with_crash(p - 1, 1e-3 + 5e-7)
        .with_storm(0, 3, 1e-3, 2e-3, 3.0);
    let prof = profile_with_faults(&platform, &spec, &pattern, 3, &faults).unwrap();
    assert_eq!(prof.crashed, 1);
    assert!(prof.d_hat >= clean.d_hat, "faults cannot speed survivors up");
    let json = prof.trace.to_json_string();
    let stats = pap::obs::validate_trace(&json).unwrap();
    assert_eq!(stats.lanes, p + 1, "rank lanes plus the faults lane");
    assert!(json.contains("crashed"));
    assert!(json.contains("storm r0-r3"));
}
