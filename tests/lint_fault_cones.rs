//! Differential pin of the fault-reachability analysis: for an entry crash
//! (at or before the harmonized arrival instant), the static crash cone of
//! `pap-lint` must equal the event-driven engine's starved-rank set
//! *exactly* — on every registered algorithm, eager and rendezvous, leaf
//! and interior victims. This is the correspondence `fault_sweep` relies on
//! when it settles crash cells statically instead of simulating them.
//!
//! The golden fixture `results/lint_fault_cones.json` pins the cones
//! themselves, so a schedule or analysis change that silently moves a
//! blast radius shows up as a diff. Regenerate after an intentional change
//! with `PAP_UPDATE_FIXTURES=1 cargo test --test lint_fault_cones`.

use serde::{Deserialize, Serialize};

use pap::collectives::registry::algorithms;
use pap::collectives::{build, CollSpec, CollectiveKind};
use pap::lint::{crash_cone, CrashPoint, LintConfig};
use pap::sim::{run_ref, FaultSpec, Job, Platform, RankProgram, SimConfig, SimError};

const RANKS: usize = 16;
const SIZES: [u64; 2] = [1024, 128 * 1024]; // one eager, one rendezvous

/// One differential case: the static cone of an entry crash, confirmed
/// identical to the engine's starved set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ConeRow {
    collective: String,
    alg: u8,
    ranks: usize,
    bytes: u64,
    victim: usize,
    starved: Vec<usize>,
}

const KINDS: [CollectiveKind; 8] = [
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Alltoall,
    CollectiveKind::Bcast,
    CollectiveKind::Barrier,
    CollectiveKind::Allgather,
    CollectiveKind::Gather,
    CollectiveKind::Scatter,
];

fn registry_job(kind: CollectiveKind, alg: u8, p: usize, bytes: u64) -> Job {
    let built = build(&CollSpec::new(kind, alg, bytes), p).unwrap();
    Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect())
}

/// The engine's starved survivors under an entry crash of `rank` (empty
/// when the run completes). Crashing at t=0 is before any op completes:
/// channel-visible work costs strictly positive time.
fn sim_starved(job: &Job, p: usize, rank: usize) -> Vec<usize> {
    let platform = Platform::simcluster(p);
    let cfg = SimConfig { faults: FaultSpec::none().with_crash(rank, 0.0), ..SimConfig::default() };
    match run_ref(&platform, job, &cfg) {
        Ok(_) => vec![],
        Err(SimError::Deadlock { blocked, .. }) => {
            let mut ranks: Vec<usize> = blocked.iter().map(|(r, _)| *r).collect();
            ranks.sort_unstable();
            ranks
        }
        Err(e) => panic!("unexpected sim error: {e}"),
    }
}

/// Every registered algorithm, both protocol regimes, a leaf-end victim
/// (`p-1`, the standard grid's crash_leaf) and an interior victim (`1`).
fn all_rows() -> Vec<ConeRow> {
    let lint_cfg = LintConfig::default();
    let mut rows = Vec::new();
    for kind in KINDS {
        for a in algorithms(kind) {
            for bytes in SIZES {
                let job = registry_job(kind, a.id, RANKS, bytes);
                for victim in [1, RANKS - 1] {
                    let cone = crash_cone(&job, &lint_cfg, &[CrashPoint::on_entry(victim)]);
                    let static_starved = cone.starved_ranks();
                    let engine_starved = sim_starved(&job, RANKS, victim);
                    assert_eq!(
                        static_starved, engine_starved,
                        "static cone and engine starvation disagree: {} A{} {} B victim {}",
                        kind, a.id, bytes, victim
                    );
                    rows.push(ConeRow {
                        collective: kind.name().to_string(),
                        alg: a.id,
                        ranks: RANKS,
                        bytes,
                        victim,
                        starved: static_starved,
                    });
                }
            }
        }
    }
    rows
}

#[test]
fn static_cones_match_engine_starvation_exactly() {
    let rows = all_rows();
    assert!(rows.len() >= 100, "registry coverage shrank to {} cases", rows.len());
    // The differential is vacuous if nothing ever starves — and wrong if
    // nothing ever completes.
    assert!(rows.iter().any(|r| !r.starved.is_empty()), "no case starves anyone");
    assert!(rows.iter().any(|r| r.starved.is_empty()), "every case starves someone");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/lint_fault_cones.json");
    let current = serde_json::to_string_pretty(&rows).unwrap() + "\n";
    if std::env::var("PAP_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::write(path, current).unwrap();
        return;
    }
    let stored = std::fs::read_to_string(path).expect(
        "missing results/lint_fault_cones.json — generate it with \
         PAP_UPDATE_FIXTURES=1 cargo test --test lint_fault_cones",
    );
    assert_eq!(
        stored, current,
        "fault-cone fixture is stale; if the schedule/analysis change is \
         intentional, regenerate with PAP_UPDATE_FIXTURES=1"
    );
}
