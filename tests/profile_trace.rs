//! Timeline-export invariants: `pap::microbench::profile` must emit valid
//! Chrome Trace Event JSON (Perfetto-loadable) for arbitrary collectives and
//! arrival patterns, its metadata must agree with the measurement harness,
//! and the canonical Fig. 1 run is pinned byte-for-byte in
//! `results/profile_fig1.json`. Regenerate after an intentional simulator or
//! exporter change with
//! `PAP_UPDATE_FIXTURES=1 cargo test --test profile_trace`.

use pap::arrival::{generate, Shape};
use pap::collectives::registry::{algorithms, experiment_ids};
use pap::collectives::{CollSpec, CollectiveKind};
use pap::microbench::{measure, profile, BenchConfig, Profile};
use pap::obs::validate_trace;
use pap::sim::Platform;
use proptest::prelude::*;
use serde::Content;

/// The canonical run pinned by the fixture: the paper's Fig. 1 setting — a
/// reduce whose arrival pattern is linearly skewed (imbalanced-linear), with
/// the skew on the order of the collective's own runtime.
fn fig1_profile() -> Profile {
    let platform = Platform::simcluster(16);
    let spec = CollSpec::new(CollectiveKind::Reduce, experiment_ids(CollectiveKind::Reduce)[0], 1024);
    let pattern = generate(Shape::Ascending, 16, 1e-4, 1);
    profile(&platform, &spec, &pattern, 1).unwrap()
}

fn f64_meta(p: &Profile, key: &str) -> f64 {
    match p.trace.metadata_value(key) {
        Some(Content::F64(v)) => *v,
        other => panic!("metadata {key} missing or not F64: {other:?}"),
    }
}

#[test]
fn fig1_trace_fixture_is_current() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/profile_fig1.json");
    let current = fig1_profile().trace.to_json_string() + "\n";
    if std::env::var("PAP_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::write(path, current).unwrap();
        return;
    }
    let stored = std::fs::read_to_string(path).expect(
        "missing results/profile_fig1.json — generate it with \
         PAP_UPDATE_FIXTURES=1 cargo test --test profile_trace",
    );
    assert_eq!(
        stored, current,
        "profile trace fixture is stale; if the simulator/exporter change is \
         intentional, regenerate with PAP_UPDATE_FIXTURES=1"
    );
}

#[test]
fn fig1_fixture_file_validates_as_trace_event_json() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/profile_fig1.json");
    let json = std::fs::read_to_string(path).unwrap();
    let stats = validate_trace(&json).unwrap();
    assert_eq!(stats.lanes, 16);
    assert!(stats.flows > 0);
}

/// The d̂ the trace reports (and visualizes as the last arrival→last exit
/// gap) is exactly what the measurement harness reports for the same cell.
#[test]
fn trace_metadata_matches_the_harness_d_hat() {
    let prof = fig1_profile();
    let platform = Platform::simcluster(16);
    let spec = CollSpec::new(CollectiveKind::Reduce, experiment_ids(CollectiveKind::Reduce)[0], 1024);
    let pattern = generate(Shape::Ascending, 16, 1e-4, 1);
    let st = measure(&platform, &spec, &pattern, &BenchConfig::simulation()).unwrap();
    assert!((prof.d_hat - st.mean_last()).abs() < 1e-12);
    assert!((prof.d_star - st.mean_total()).abs() < 1e-12);
    assert!((f64_meta(&prof, "d_hat_s") - prof.d_hat).abs() < 1e-15);
    assert!((f64_meta(&prof, "d_star_s") - prof.d_star).abs() < 1e-15);
}

fn kinds() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::Reduce),
        Just(CollectiveKind::Allreduce),
        Just(CollectiveKind::Alltoall),
        Just(CollectiveKind::Bcast),
        Just(CollectiveKind::Barrier),
        Just(CollectiveKind::Gather),
        Just(CollectiveKind::Scatter),
        Just(CollectiveKind::Allgather),
    ]
}

fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::NoDelay),
        Just(Shape::Ascending),
        Just(Shape::Descending),
        Just(Shape::Random),
        Just(Shape::LastDelayed),
        Just(Shape::FirstDelayed),
        Just(Shape::VShape),
        Just(Shape::InvertedV),
        Just(Shape::HalfStep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary collective × algorithm × ranks × pattern: the emitted trace
    /// passes full structural validation — every `B` has a matching, properly
    /// nested `E`, per-lane timestamps are monotone, and every flow arrow has
    /// both endpoints — with one lane per rank.
    #[test]
    fn any_profile_emits_a_valid_trace(
        kind in kinds(),
        alg_pick in 0usize..8,
        ranks in 4usize..=20,
        shape in shapes(),
        skew_us in 0.0f64..200.0,
        seed in 0u64..1000,
    ) {
        let algs = algorithms(kind);
        let alg = algs[alg_pick % algs.len()].id;
        let platform = Platform::simcluster(ranks);
        let spec = CollSpec::new(kind, alg, 2048);
        let pattern = generate(shape, ranks, skew_us * 1e-6, seed);
        let prof = profile(&platform, &spec, &pattern, seed).unwrap();
        let stats = validate_trace(&prof.trace.to_json_string()).unwrap();
        prop_assert_eq!(stats.lanes, ranks, "one lane per rank");
        prop_assert_eq!(stats.flows, prof.messages, "one flow arrow per message");
        // Every rank contributes a collective slice; delayed ranks add a
        // wait slice on top.
        prop_assert!(stats.slices >= ranks);
        prop_assert!(prof.d_star >= prof.d_hat - 1e-15, "d* dominates d̂ (Eq. 1 vs 2)");
    }
}
