//! Offline vendored subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of serde this workspace needs: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, serialized through a small self-describing
//! [`Content`] tree that `serde_json` (also vendored) renders and parses.
//!
//! The JSON encoding matches serde's externally-tagged convention:
//! structs are objects, unit enum variants are strings, newtype variants are
//! one-entry objects, tuple variants are one-entry objects holding arrays,
//! and struct variants are one-entry objects holding objects.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value (the vendored data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key-ordered map (declaration order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Convert to the data model.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

/// Look up a struct field in a serialized map and deserialize it (used by
/// the derive macro).
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

/// Look up `name`, falling back to `Default::default()` when absent — the
/// backing for `#[serde(default)]` fields (evidence persisted before the
/// field existed deserializes to the default instead of erroring).
pub fn field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    name: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Ok(T::default()),
    }
}

// -- primitive impls --------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => return Err(Error::custom(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(|_| Error::custom("integer out of range"))?,
                    Content::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(Error::custom(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match *c {
            Content::F64(f) => Ok(f),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            // serde_json convention: non-finite floats round-trip as null.
            Content::Null => Ok(f64::NAN),
            ref other => Err(Error::custom(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(s) => s.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_content() {
                        Content::Str(s) => s,
                        other => content_key(&other),
                    };
                    (key, v.to_content())
                })
                .collect(),
        )
    }
}

fn content_key(c: &Content) -> String {
    match c {
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}
