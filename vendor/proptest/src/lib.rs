//! Offline vendored subset of `proptest`.
//!
//! The build environment has no crates.io access, so this crate supplies the
//! slice of proptest the workspace uses: range/tuple/`Just`/`any` strategies,
//! `prop_map`, `prop_oneof!`, `proptest::collection::vec`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - Sampling is deterministic: case `i` of every test draws from a fixed
//!   SplitMix64 stream keyed by `i`, so runs are reproducible without
//!   regression files.
//! - No shrinking. A failing case panics with the assertion message; rerun
//!   under a debugger to inspect it (the inputs are a pure function of the
//!   case index).

pub mod test_runner {
    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` (same stream on every run).
        pub fn for_case(case: u64) -> Self {
            TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5EED_5EED_5EED }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Test-loop configuration (`cases` is the number of sampled inputs).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each `proptest!` test runs.
        pub cases: u32,
        /// Accepted for upstream compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the (nonempty) list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range: every draw is in range.
                        rng.next_u64() as $t
                    } else {
                        (lo as i128 + rng.below(span) as i128) as $t
                    }
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vectors with length drawn from `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Expand a block of deterministic sampled test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Assert a property; panics (failing the test) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality; panics (failing the test) on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(7);
        for _ in 0..1000 {
            let v = (2usize..12).sample(&mut rng);
            assert!((2..12).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (1u64..=5).sample(&mut rng);
            assert!((1..=5).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_case(3);
            (any::<u64>(), 0usize..10, 0.0f64..1.0).sample(&mut rng)
        };
        assert_eq!(draw().0, draw().0);
        assert_eq!(draw().1, draw().1);
        assert_eq!(draw().2, draw().2);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_compiles_and_runs(
            a in 1usize..10,
            b in prop_oneof![Just(0u64), 1u64..=8],
            v in crate::collection::vec(0.0f64..1.0, 1..5),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 8);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
