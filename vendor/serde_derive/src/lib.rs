//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! `syn`/`quote` are not available offline, so the item is parsed directly
//! from the [`proc_macro::TokenStream`]: skip attributes and visibility,
//! read `struct`/`enum`, collect field or variant names, and emit the impl
//! as formatted source. Supports non-generic named-field structs and enums
//! with unit, tuple and struct variants — the only shapes this workspace
//! derives serde on. The single field attribute understood is
//! `#[serde(default)]`: the field falls back to `Default::default()` when
//! its key is missing (forward-compatible evidence formats).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// A named field and whether it carries `#[serde(default)]`.
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

/// Skip `#[...]` attribute groups (incl. doc comments) and visibility.
fn skip_meta(tokens: &[TokenTree], i: usize) -> usize {
    skip_meta_flagged(tokens, i).0
}

/// `#[serde(default)]` — a bracket group `serde(default)`.
fn attr_is_serde_default(g: &Group) -> bool {
    let ts: Vec<TokenTree> = g.stream().into_iter().collect();
    matches!(ts.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
        && ts.iter().any(|t| match t {
            TokenTree::Group(inner) => inner
                .stream()
                .into_iter()
                .any(|tt| matches!(tt, TokenTree::Ident(d) if d.to_string() == "default")),
            _ => false,
        })
}

/// Like [`skip_meta`], also reporting whether a `#[serde(default)]`
/// attribute was among the skipped metadata.
fn skip_meta_flagged(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket && attr_is_serde_default(g) {
                        default = true;
                    }
                }
                // '#' then the bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc: a parenthesized group follows.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return (i, default),
        }
    }
}

/// Parse the fields of a named-field body `{ a: T, b: U }` → field names
/// plus their `#[serde(default)]` flag.
fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, default) = skip_meta_flagged(&tokens, i);
        i = j;
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(Field { name: name.to_string(), default });
        i += 1;
        // Expect ':' then the type; skip until a comma at angle-depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple body `(T, U)` by top-level commas.
fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    // Trailing comma.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(&g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip the separating comma (and any stray tokens, e.g. `= 3`).
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive (vendored): only brace-bodied structs/enums are supported"),
    };
    match kw.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(&body) },
        "enum" => Item::Enum { name, variants: parse_variants(&body) },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("f{k}")).collect()
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let bs = binders(*n);
                            let items: Vec<String> =
                                bs.iter().map(|b| format!("::serde::Serialize::to_content({b})")).collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                bs.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let names: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = names
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Content::Map(vec![{}]))]),",
                                names.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("serde_derive: generated impl must parse")
}

/// Field initializer: honor `#[serde(default)]` with the tolerant lookup.
fn field_init(f: &Field) -> String {
    let (name, helper) =
        (&f.name, if f.default { "field_or_default" } else { "field" });
    format!("{name}: ::serde::{helper}(map, \"{name}\")?")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(field_init).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         let map = c.as_map().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected map for struct {name}, found {{}}\", c.kind())))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(v)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_content(seq.get({k}).ok_or_else(|| \
                                         ::serde::Error::custom(\"variant {vn}: sequence too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let seq = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                                         \"variant {vn}: expected sequence\"))?;\n\
                                     Ok({name}::{vn}({}))\n\
                                 }},",
                                gets.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields.iter().map(field_init).collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let map = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                                         \"variant {vn}: expected map\"))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::custom(format!(\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                                 let (k, v) = &m[0];\n\
                                 let _ = v;\n\
                                 match k.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::custom(format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => Err(::serde::Error::custom(format!(\
                                 \"expected enum {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    out.parse().expect("serde_derive: generated impl must parse")
}
