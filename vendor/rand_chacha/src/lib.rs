//! Offline vendored ChaCha-based RNG.
//!
//! Implements the real ChaCha keystream (D. J. Bernstein's public design)
//! with 8, 12 or 20 rounds, exposed as [`ChaCha8Rng`], [`ChaCha12Rng`] and
//! [`ChaCha20Rng`] with the `rand` [`SeedableRng`]/[`RngCore`] interface.
//! Deterministic: the same seed always yields the same stream on every
//! platform. Stream/word ordering follows the ChaCha block layout directly;
//! this crate promises self-consistency, not bit-compatibility with the
//! upstream `rand_chacha` crate.

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize, out: &mut [u32; 16]) {
    // "expand 32-byte k" constants.
    let mut st: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let input = st;
    for _ in 0..rounds / 2 {
        quarter_round(&mut st, 0, 4, 8, 12);
        quarter_round(&mut st, 1, 5, 9, 13);
        quarter_round(&mut st, 2, 6, 10, 14);
        quarter_round(&mut st, 3, 7, 11, 15);
        quarter_round(&mut st, 0, 5, 10, 15);
        quarter_round(&mut st, 1, 6, 11, 12);
        quarter_round(&mut st, 2, 7, 8, 13);
        quarter_round(&mut st, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(st.iter().zip(input.iter())) {
        *o = s.wrapping_add(*i);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr) => {
        /// ChaCha RNG with the round count in the type name.
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means exhausted.
            idx: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name { key, counter: 0, buf: [0; 16], idx: 16 }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    chacha_block(&self.key, self.counter, $rounds, &mut self.buf);
                    self.counter = self.counter.wrapping_add(1);
                    self.idx = 0;
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            r.next_u32();
        }
        let mut s = r.clone();
        assert_eq!(r.next_u64(), s.next_u64());
    }
}
