//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng`] (including the SplitMix64-based
//! `seed_from_u64` used by the upstream crate), and the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`.
//!
//! The statistical properties match the documented upstream behaviour
//! (uniform floats in `[0, 1)` with 53 bits of precision, Lemire-style
//! unbiased integer ranges are replaced by widening-multiply rejection-free
//! mapping, which is adequate for simulation seeding and jitter).

/// Core random number generation trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`] (stand-in for the
/// upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 significant bits, uniform in [0, 1) — the upstream convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding via SplitMix64 exactly like the
    /// upstream default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (public-domain constants), 32 bits per output —
            // the upstream `seed_from_u64` algorithm.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len().min(4);
            chunk[..n].copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Submodule mirror so `use rand::rngs::...`-style paths keep working.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }
}
