//! Offline vendored `serde_json` subset: `to_string`, `to_string_pretty`
//! and `from_str` over the vendored serde [`Content`] data model.
//!
//! Floats are rendered with Rust's shortest round-trip formatting (`{:?}`),
//! so values survive a serialize → parse cycle exactly. Non-finite floats
//! serialize as `null` (the upstream convention) and parse back as NaN.

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let c = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_content(&c)
}

// -- rendering --------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => write_bracketed(out, indent, level, items.len(), '[', ']', |out, i, lvl| {
            write_content(&items[i], out, indent, lvl);
        }),
        Content::Map(entries) => {
            write_bracketed(out, indent, level, entries.len(), '{', '}', |out, i, lvl| {
                let (k, v) = &entries[i];
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, lvl);
            })
        }
    }
}

fn write_bracketed(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    n: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- parsing ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Content::Bool(true)),
            Some(b'f') => self.parse_lit("false", Content::Bool(false)),
            Some(b'n') => self.parse_lit("null", Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!("unexpected `{}` at offset {}", b as char, self.pos))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number encoding"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // accept lone BMP code points.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::custom(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::custom(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn float_shortest_round_trip() {
        for &f in &[0.1, 1e-9, 123456.789, 2.2250738585072014e-308, 0.30000000000000004] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn nan_round_trips_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>(&s).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("4").unwrap(), Some(4));
    }

    #[test]
    fn pretty_has_indentation() {
        let v = vec![1u8, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }
}
