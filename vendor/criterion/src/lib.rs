//! Offline vendored subset of `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! criterion-compatible API (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros) backed by a simple wall-clock harness: per benchmark it warms up,
//! grows the batch size until a minimum measurement window is filled, then
//! reports the best ns/iter over a few samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MIN_WINDOW: Duration = Duration::from_millis(25);
const MAX_BATCH: u64 = 1 << 24;

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare work-per-iteration so results also print as throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time the closure; called once per benchmark.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup + forces lazy init
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_WINDOW || batch >= MAX_BATCH {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / batch as f64);
                return;
            }
            batch *= 2;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Best-of-N suppresses scheduler noise without criterion's full statistics.
    let samples = sample_size.clamp(2, 10);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let mut b = Bencher { ns_per_iter: None };
        f(&mut b);
        if let Some(ns) = b.ns_per_iter {
            best = best.min(ns);
        }
    }
    if best.is_infinite() {
        println!("{name:<50} (no measurement: closure never called iter)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {} elem/s", human_rate(n as f64 * 1e9 / best)),
        Some(Throughput::Bytes(n)) => format!("  {}B/s", human_rate(n as f64 * 1e9 / best)),
        None => String::new(),
    };
    println!("{name:<50} time: {}{rate}", human_time(best));
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter.unwrap() > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
